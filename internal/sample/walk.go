package sample

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// ErrNoEdges is the typed sentinel behind every "this graph cannot be
// walked" failure: an empty graph, a graph whose every node is isolated, or
// an explicitly configured start node with no edges. Callers (the crawl
// controller, topoestd) match it with errors.Is to distinguish a bad graph
// from a bad configuration — the two need different operator responses.
var ErrNoEdges = errors.New("no node with positive degree to start a walk from")

// randomStart picks a uniform random node with positive degree, preferring
// nodes in large components by construction of the experiments (the
// generators patch connectivity; on arbitrary graphs the walk explores the
// start node's component only, as any crawl does).
//
// Rejection sampling alone is not enough: on a graph where only a handful
// of nodes have positive degree, any bounded number of probes fails with
// positive probability, turning a well-defined draw into a spurious error.
// After a few fast-path probes the fallback scans the graph once and picks
// uniformly among the qualifying nodes, which is exact and cannot fail
// unless no such node exists.
func randomStart(r *rand.Rand, src graph.Source) (int32, error) {
	n := src.NumNodes()
	if n == 0 {
		return 0, fmt.Errorf("sample: empty graph: %w", ErrNoEdges)
	}
	// Fast path: on the experiments' graphs nearly every node qualifies, so
	// a few probes almost always hit without touching the whole graph.
	for attempt := 0; attempt < 64; attempt++ {
		v := int32(r.IntN(n))
		if src.Degree(v) > 0 {
			return v, nil
		}
	}
	// Deterministic fallback: count the qualifying nodes, then take the
	// k-th one uniformly at random — still an exactly uniform draw.
	count := 0
	for v := 0; v < n; v++ {
		if src.Degree(int32(v)) > 0 {
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("sample: %w", ErrNoEdges)
	}
	k := r.IntN(count)
	for v := 0; v < n; v++ {
		if src.Degree(int32(v)) > 0 {
			if k == 0 {
				return int32(v), nil
			}
			k--
		}
	}
	return 0, fmt.Errorf("sample: unreachable") // count > 0 guarantees a hit above
}

// RandomStart picks a uniform random node with positive degree — the
// default starting point of every walk sampler, exported for walk drivers
// (e.g. internal/crawl) that step walks incrementally instead of calling
// Sample. An unwalkable graph yields an error wrapping ErrNoEdges.
func RandomStart(r *rand.Rand, src graph.Source) (int32, error) {
	return randomStart(r, src)
}

// startNode resolves a sampler's Start field: a negative start draws
// uniformly among positive-degree nodes, a non-negative one is validated —
// out of range is a configuration error, in range but isolated wraps
// ErrNoEdges (the walk has nowhere to go, a property of the graph).
func startNode(r *rand.Rand, src graph.Source, start int32) (int32, error) {
	if start < 0 {
		return randomStart(r, src)
	}
	if int(start) >= src.NumNodes() {
		return 0, fmt.Errorf("sample: start node %d outside [0,%d)", start, src.NumNodes())
	}
	if src.Degree(start) == 0 {
		return 0, fmt.Errorf("sample: start node %d is isolated: %w", start, ErrNoEdges)
	}
	return start, nil
}

// validateWalkParams rejects walk parameters that a zero-value sampler
// struct carries: a literal RW{}/MHRW{}/WRW{} has Thin 0, bypassing the
// constructors' Thin-1 default, and silently clamping it (or a negative
// BurnIn) would hide a misconfigured caller. The constructors always set
// valid values, so this only fires on hand-built structs.
func validateWalkParams(name string, burnIn, thin int) error {
	if thin < 1 {
		return fmt.Errorf("sample: %s needs Thin ≥ 1, got %d (construct with New%s, or set Thin explicitly on a struct literal)", name, thin, name)
	}
	if burnIn < 0 {
		return fmt.Errorf("sample: %s needs BurnIn ≥ 0, got %d", name, burnIn)
	}
	return nil
}

// Stepper is the incremental form of a crawling design: one transition of
// the walk at a time, plus the stationary draw weight w(v) ∝ π(v) the
// Hansen–Hurwitz estimators divide by. The batch Sample methods of
// RW/MHRW/WRW drive these same kernels, and so does the adaptive crawl
// controller (internal/crawl) — one definition per kernel, shared by both.
// The kernels are written against graph.Source, so the same walk runs over
// the in-memory CSR, the out-of-core packed backend, or a rate-limited
// remote simulation without change.
type Stepper interface {
	// Step moves from cur to the next node of the walk.
	Step(r *rand.Rand, cur int32) int32
	// Weight returns the stationary draw weight of v.
	Weight(v int32) float64
}

// rwStepper: uniform random neighbor; stationary distribution ∝ degree.
type rwStepper struct{ src graph.Source }

func (s rwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.src.Neighbors(cur)
	return nb[r.IntN(len(nb))]
}

func (s rwStepper) Weight(v int32) float64 { return float64(s.src.Degree(v)) }

// NewRWStepper returns the simple-random-walk kernel for src.
func NewRWStepper(src graph.Source) Stepper { return rwStepper{src} }

// mhrwStepper: propose a uniform neighbor v of u, accept with
// min(1, deg(u)/deg(v)); the stationary distribution is uniform.
type mhrwStepper struct{ src graph.Source }

func (s mhrwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.src.Neighbors(cur)
	v := nb[r.IntN(len(nb))]
	if du, dv := s.src.Degree(cur), s.src.Degree(v); dv <= du || r.Float64() < float64(du)/float64(dv) {
		return v
	}
	return cur
}

func (s mhrwStepper) Weight(int32) float64 { return 1 }

// NewMHRWStepper returns the Metropolis–Hastings kernel for src.
func NewMHRWStepper(src graph.Source) Stepper { return mhrwStepper{src} }

// wrwStepper: move along edge {u,v} with probability proportional to the
// stratified edge weight (nw[u]+nw[v])/2 of [35]; the stationary
// distribution is proportional to node strength. Node weights come from the
// source (see graph.WithNodeWeights for overlaying a dense table).
type wrwStepper struct{ src graph.Source }

func (s wrwStepper) edgeWeight(u, v int32) float64 {
	return (s.src.NodeWeight(u) + s.src.NodeWeight(v)) / 2
}

func (s wrwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.src.Neighbors(cur)
	var total float64
	for _, u := range nb {
		total += s.edgeWeight(cur, u)
	}
	x := r.Float64() * total
	acc := 0.0
	next := nb[len(nb)-1]
	for _, u := range nb {
		acc += s.edgeWeight(cur, u)
		if acc >= x {
			next = u
			break
		}
	}
	return next
}

func (s wrwStepper) Weight(v int32) float64 {
	var w float64
	for _, u := range s.src.Neighbors(v) {
		w += s.edgeWeight(v, u)
	}
	return w
}

// NewWRWStepper returns the weighted-random-walk kernel for src under the
// given per-node stratification weights (S-WRW is this kernel with the
// weights NewSWRW computes). The weights are required — a nil table is a
// misconfigured caller, not a request for unit weights (that walk is RW).
func NewWRWStepper(src graph.Source, nodeWeight []float64) (Stepper, error) {
	w, err := graph.WithNodeWeights(src, nodeWeight)
	if err != nil {
		return nil, fmt.Errorf("sample: WRW has %d node weights for %d nodes", len(nodeWeight), src.NumNodes())
	}
	return wrwStepper{w}, nil
}

// RW is the simple random walk of §3.1.2: the next node is a uniform random
// neighbor of the current one. Its stationary distribution is proportional
// to degree, so every draw is recorded with weight w(v) = deg(v).
type RW struct {
	// BurnIn discards this many initial steps before recording.
	BurnIn int
	// Thin records every Thin-th visited node (1 records every step).
	Thin int
	// Start is the starting node; negative means a random start.
	Start int32
}

// NewRW returns a random walk with a random start and the given burn-in.
func NewRW(burnIn int) *RW { return &RW{BurnIn: burnIn, Thin: 1, Start: -1} }

// Name implements Sampler.
func (w *RW) Name() string { return "RW" }

// Sample implements Sampler.
func (w *RW) Sample(r *rand.Rand, src graph.Source, n int) (*Sample, error) {
	if err := validateWalkParams("RW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	cur, err := startNode(r, src, w.Start)
	if err != nil {
		return nil, err
	}
	return stepSample(r, NewRWStepper(src), cur, n, w.BurnIn, w.Thin, true), nil
}

// stepSample drives a kernel through the burn-in/record/thin cycle shared
// by every walk sampler. weighted selects whether the design's stationary
// weights are recorded (MHRW targets the uniform distribution, so its
// samples carry nil weights by convention).
func stepSample(r *rand.Rand, st Stepper, cur int32, n, burnIn, thin int, weighted bool) *Sample {
	for i := 0; i < burnIn; i++ {
		cur = st.Step(r, cur)
	}
	s := &Sample{Nodes: make([]int32, 0, n)}
	if weighted {
		s.Weights = make([]float64, 0, n)
	}
	for len(s.Nodes) < n {
		s.Nodes = append(s.Nodes, cur)
		if weighted {
			s.Weights = append(s.Weights, st.Weight(cur))
		}
		for t := 0; t < thin; t++ {
			cur = st.Step(r, cur)
		}
	}
	return s
}

// MHRW is the Metropolis–Hastings random walk of §3.1.2 targeting the
// uniform distribution: a uniform random neighbor v of the current node u is
// proposed and accepted with probability min(1, deg(u)/deg(v)); otherwise
// the walk stays at u (and u is sampled again). Draw weights are uniform.
type MHRW struct {
	BurnIn int
	Thin   int
	Start  int32
}

// NewMHRW returns an MHRW sampler with a random start.
func NewMHRW(burnIn int) *MHRW { return &MHRW{BurnIn: burnIn, Thin: 1, Start: -1} }

// Name implements Sampler.
func (w *MHRW) Name() string { return "MHRW" }

// Sample implements Sampler.
func (w *MHRW) Sample(r *rand.Rand, src graph.Source, n int) (*Sample, error) {
	if err := validateWalkParams("MHRW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	cur, err := startNode(r, src, w.Start)
	if err != nil {
		return nil, err
	}
	// Uniform target ⇒ nil weights (w ≡ 1).
	return stepSample(r, NewMHRWStepper(src), cur, n, w.BurnIn, w.Thin, false), nil
}

// WRW is a weighted random walk (§3.1.2): the walk moves along edge {u,v}
// with probability proportional to a per-node weight sum; its stationary
// distribution is proportional to node strength, which is recorded as the
// draw weight. The edge weight of {u,v} is (NodeWeight[u]+NodeWeight[v])/2,
// the stratified-walk construction of [35].
type WRW struct {
	BurnIn int
	Thin   int
	Start  int32
	// NodeWeight[v] is the per-node stratification weight.
	NodeWeight []float64
	name       string
}

// NewWRW returns a weighted random walk with the given node weights.
func NewWRW(nodeWeight []float64, burnIn int) *WRW {
	return &WRW{BurnIn: burnIn, Thin: 1, Start: -1, NodeWeight: nodeWeight, name: "WRW"}
}

// Name implements Sampler.
func (w *WRW) Name() string { return w.name }

// Sample implements Sampler.
func (w *WRW) Sample(r *rand.Rand, src graph.Source, n int) (*Sample, error) {
	if err := validateWalkParams("WRW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	st, err := NewWRWStepper(src, w.NodeWeight)
	if err != nil {
		return nil, err
	}
	cur, err := startNode(r, src, w.Start)
	if err != nil {
		return nil, err
	}
	return stepSample(r, st, cur, n, w.BurnIn, w.Thin, true), nil
}

// SWRWConfig parameterizes the stratified weighted random walk (S-WRW) of
// Kurant et al. [35] as used in §6.3 and §7 of the paper.
type SWRWConfig struct {
	// CategoryWeight[c] is the importance weight of category c. The paper's
	// simulations use equal weights for all categories. Nil means equal.
	CategoryWeight []float64
	// IrrelevantWeight is the relative weight given to uncategorized nodes
	// (the paper's f̃⊖ = 0 setting means "as few samples there as
	// possible"; the walk still needs positive weight to traverse them).
	// It is expressed as a fraction of the smallest relevant node weight
	// and defaults to 0.01.
	IrrelevantWeight float64
	BurnIn           int
	Thin             int
}

// NewSWRW builds the S-WRW sampler for src: each node v in category C gets
// stratification weight CategoryWeight[C]/vol(C), which makes the walk spend
// (approximately) equal aggregate time in every category — i.e. it
// oversamples small categories, by one order of magnitude and more in the
// paper's college dataset (Fig. 5(b)). Uncategorized nodes get a small
// positive weight so the walk can cross them. The per-category volumes come
// from the source's StatsSource extension (the packed backend stores them in
// its header sections, so stratified walks work out-of-core).
func NewSWRW(src graph.Source, cfg SWRWConfig) (*WRW, error) {
	st, ok := graph.StatsOf(src)
	if !ok || src.NumCategories() == 0 {
		return nil, fmt.Errorf("sample: S-WRW needs a categorized graph with category volumes")
	}
	k := src.NumCategories()
	cw := cfg.CategoryWeight
	if cw == nil {
		cw = make([]float64, k)
		for i := range cw {
			cw[i] = 1
		}
	}
	if len(cw) != k {
		return nil, fmt.Errorf("sample: %d category weights for %d categories", len(cw), k)
	}
	irr := cfg.IrrelevantWeight
	if irr <= 0 {
		irr = 0.01
	}
	nw := make([]float64, src.NumNodes())
	minRelevant := -1.0
	for v := range nw {
		c := src.Category(int32(v))
		if c == graph.None {
			continue
		}
		vol := float64(st.CategoryVolume(c))
		if vol == 0 {
			continue
		}
		nw[v] = cw[c] / vol
		if minRelevant < 0 || nw[v] < minRelevant {
			minRelevant = nw[v]
		}
	}
	if minRelevant < 0 {
		return nil, fmt.Errorf("sample: no categorized node with positive volume")
	}
	for v := range nw {
		if nw[v] == 0 {
			nw[v] = irr * minRelevant
		}
	}
	w := NewWRW(nw, cfg.BurnIn)
	w.Thin = max(cfg.Thin, 1)
	w.name = "S-WRW"
	return w, nil
}

// Walks draws `walks` independent samples of perWalk draws each using the
// given sampler — the multi-crawl design of the paper's Facebook datasets
// (Table 2: 28 and 25 independent walks).
func Walks(r *rand.Rand, src graph.Source, s Sampler, walks, perWalk int) ([]*Sample, error) {
	out := make([]*Sample, walks)
	for i := range out {
		var err error
		out[i], err = s.Sample(r, src, perWalk)
		if err != nil {
			return nil, fmt.Errorf("sample: walk %d: %w", i, err)
		}
	}
	return out, nil
}
