package sample

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// randomStart picks a uniform random node with positive degree, preferring
// nodes in large components by construction of the experiments (the
// generators patch connectivity; on arbitrary graphs the walk explores the
// start node's component only, as any crawl does).
//
// Rejection sampling alone is not enough: on a graph where only a handful
// of nodes have positive degree, any bounded number of probes fails with
// positive probability, turning a well-defined draw into a spurious error.
// After a few fast-path probes the fallback scans the graph once and picks
// uniformly among the qualifying nodes, which is exact and cannot fail
// unless no such node exists.
func randomStart(r *rand.Rand, g *graph.Graph) (int32, error) {
	if g.N() == 0 {
		return 0, fmt.Errorf("sample: empty graph")
	}
	// Fast path: on the experiments' graphs nearly every node qualifies, so
	// a few probes almost always hit without touching the whole graph.
	for attempt := 0; attempt < 64; attempt++ {
		v := int32(r.IntN(g.N()))
		if g.Degree(v) > 0 {
			return v, nil
		}
	}
	// Deterministic fallback: count the qualifying nodes, then take the
	// k-th one uniformly at random — still an exactly uniform draw.
	count := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(int32(v)) > 0 {
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("sample: no node with positive degree")
	}
	k := r.IntN(count)
	for v := 0; v < g.N(); v++ {
		if g.Degree(int32(v)) > 0 {
			if k == 0 {
				return int32(v), nil
			}
			k--
		}
	}
	return 0, fmt.Errorf("sample: unreachable") // count > 0 guarantees a hit above
}

// RandomStart picks a uniform random node with positive degree — the
// default starting point of every walk sampler, exported for walk drivers
// (e.g. internal/crawl) that step walks incrementally instead of calling
// Sample.
func RandomStart(r *rand.Rand, g *graph.Graph) (int32, error) {
	return randomStart(r, g)
}

// validateWalkParams rejects walk parameters that a zero-value sampler
// struct carries: a literal RW{}/MHRW{}/WRW{} has Thin 0, bypassing the
// constructors' Thin-1 default, and silently clamping it (or a negative
// BurnIn) would hide a misconfigured caller. The constructors always set
// valid values, so this only fires on hand-built structs.
func validateWalkParams(name string, burnIn, thin int) error {
	if thin < 1 {
		return fmt.Errorf("sample: %s needs Thin ≥ 1, got %d (construct with New%s, or set Thin explicitly on a struct literal)", name, thin, name)
	}
	if burnIn < 0 {
		return fmt.Errorf("sample: %s needs BurnIn ≥ 0, got %d", name, burnIn)
	}
	return nil
}

// Stepper is the incremental form of a crawling design: one transition of
// the walk at a time, plus the stationary draw weight w(v) ∝ π(v) the
// Hansen–Hurwitz estimators divide by. The batch Sample methods of
// RW/MHRW/WRW drive these same kernels, and so does the adaptive crawl
// controller (internal/crawl) — one definition per kernel, shared by both.
type Stepper interface {
	// Step moves from cur to the next node of the walk.
	Step(r *rand.Rand, cur int32) int32
	// Weight returns the stationary draw weight of v.
	Weight(v int32) float64
}

// rwStepper: uniform random neighbor; stationary distribution ∝ degree.
type rwStepper struct{ g *graph.Graph }

func (s rwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.g.Neighbors(cur)
	return nb[r.IntN(len(nb))]
}

func (s rwStepper) Weight(v int32) float64 { return float64(s.g.Degree(v)) }

// NewRWStepper returns the simple-random-walk kernel for g.
func NewRWStepper(g *graph.Graph) Stepper { return rwStepper{g} }

// mhrwStepper: propose a uniform neighbor v of u, accept with
// min(1, deg(u)/deg(v)); the stationary distribution is uniform.
type mhrwStepper struct{ g *graph.Graph }

func (s mhrwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.g.Neighbors(cur)
	v := nb[r.IntN(len(nb))]
	if du, dv := s.g.Degree(cur), s.g.Degree(v); dv <= du || r.Float64() < float64(du)/float64(dv) {
		return v
	}
	return cur
}

func (s mhrwStepper) Weight(int32) float64 { return 1 }

// NewMHRWStepper returns the Metropolis–Hastings kernel for g.
func NewMHRWStepper(g *graph.Graph) Stepper { return mhrwStepper{g} }

// wrwStepper: move along edge {u,v} with probability proportional to the
// stratified edge weight (nw[u]+nw[v])/2 of [35]; the stationary
// distribution is proportional to node strength.
type wrwStepper struct {
	g  *graph.Graph
	nw []float64
}

func (s wrwStepper) edgeWeight(u, v int32) float64 { return (s.nw[u] + s.nw[v]) / 2 }

func (s wrwStepper) Step(r *rand.Rand, cur int32) int32 {
	nb := s.g.Neighbors(cur)
	var total float64
	for _, u := range nb {
		total += s.edgeWeight(cur, u)
	}
	x := r.Float64() * total
	acc := 0.0
	next := nb[len(nb)-1]
	for _, u := range nb {
		acc += s.edgeWeight(cur, u)
		if acc >= x {
			next = u
			break
		}
	}
	return next
}

func (s wrwStepper) Weight(v int32) float64 {
	var w float64
	for _, u := range s.g.Neighbors(v) {
		w += s.edgeWeight(v, u)
	}
	return w
}

// NewWRWStepper returns the weighted-random-walk kernel for g under the
// given per-node stratification weights (S-WRW is this kernel with the
// weights NewSWRW computes).
func NewWRWStepper(g *graph.Graph, nodeWeight []float64) (Stepper, error) {
	if len(nodeWeight) != g.N() {
		return nil, fmt.Errorf("sample: WRW has %d node weights for %d nodes", len(nodeWeight), g.N())
	}
	return wrwStepper{g: g, nw: nodeWeight}, nil
}

// RW is the simple random walk of §3.1.2: the next node is a uniform random
// neighbor of the current one. Its stationary distribution is proportional
// to degree, so every draw is recorded with weight w(v) = deg(v).
type RW struct {
	// BurnIn discards this many initial steps before recording.
	BurnIn int
	// Thin records every Thin-th visited node (1 records every step).
	Thin int
	// Start is the starting node; negative means a random start.
	Start int32
}

// NewRW returns a random walk with a random start and the given burn-in.
func NewRW(burnIn int) *RW { return &RW{BurnIn: burnIn, Thin: 1, Start: -1} }

// Name implements Sampler.
func (w *RW) Name() string { return "RW" }

// Sample implements Sampler.
func (w *RW) Sample(r *rand.Rand, g *graph.Graph, n int) (*Sample, error) {
	if err := validateWalkParams("RW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	cur, err := w.start(r, g)
	if err != nil {
		return nil, err
	}
	return stepSample(r, NewRWStepper(g), cur, n, w.BurnIn, w.Thin, true), nil
}

// stepSample drives a kernel through the burn-in/record/thin cycle shared
// by every walk sampler. weighted selects whether the design's stationary
// weights are recorded (MHRW targets the uniform distribution, so its
// samples carry nil weights by convention).
func stepSample(r *rand.Rand, st Stepper, cur int32, n, burnIn, thin int, weighted bool) *Sample {
	for i := 0; i < burnIn; i++ {
		cur = st.Step(r, cur)
	}
	s := &Sample{Nodes: make([]int32, 0, n)}
	if weighted {
		s.Weights = make([]float64, 0, n)
	}
	for len(s.Nodes) < n {
		s.Nodes = append(s.Nodes, cur)
		if weighted {
			s.Weights = append(s.Weights, st.Weight(cur))
		}
		for t := 0; t < thin; t++ {
			cur = st.Step(r, cur)
		}
	}
	return s
}

func (w *RW) start(r *rand.Rand, g *graph.Graph) (int32, error) {
	if w.Start >= 0 {
		if int(w.Start) >= g.N() || g.Degree(w.Start) == 0 {
			return 0, fmt.Errorf("sample: invalid start node %d", w.Start)
		}
		return w.Start, nil
	}
	return randomStart(r, g)
}

// MHRW is the Metropolis–Hastings random walk of §3.1.2 targeting the
// uniform distribution: a uniform random neighbor v of the current node u is
// proposed and accepted with probability min(1, deg(u)/deg(v)); otherwise
// the walk stays at u (and u is sampled again). Draw weights are uniform.
type MHRW struct {
	BurnIn int
	Thin   int
	Start  int32
}

// NewMHRW returns an MHRW sampler with a random start.
func NewMHRW(burnIn int) *MHRW { return &MHRW{BurnIn: burnIn, Thin: 1, Start: -1} }

// Name implements Sampler.
func (w *MHRW) Name() string { return "MHRW" }

// Sample implements Sampler.
func (w *MHRW) Sample(r *rand.Rand, g *graph.Graph, n int) (*Sample, error) {
	if err := validateWalkParams("MHRW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	var cur int32
	var err error
	if w.Start >= 0 {
		cur = w.Start
		if int(cur) >= g.N() || g.Degree(cur) == 0 {
			return nil, fmt.Errorf("sample: invalid start node %d", cur)
		}
	} else if cur, err = randomStart(r, g); err != nil {
		return nil, err
	}
	// Uniform target ⇒ nil weights (w ≡ 1).
	return stepSample(r, NewMHRWStepper(g), cur, n, w.BurnIn, w.Thin, false), nil
}

// WRW is a weighted random walk (§3.1.2): the walk moves along edge {u,v}
// with probability proportional to a per-node weight sum; its stationary
// distribution is proportional to node strength, which is recorded as the
// draw weight. The edge weight of {u,v} is (NodeWeight[u]+NodeWeight[v])/2,
// the stratified-walk construction of [35].
type WRW struct {
	BurnIn int
	Thin   int
	Start  int32
	// NodeWeight[v] is the per-node stratification weight.
	NodeWeight []float64
	name       string
}

// NewWRW returns a weighted random walk with the given node weights.
func NewWRW(nodeWeight []float64, burnIn int) *WRW {
	return &WRW{BurnIn: burnIn, Thin: 1, Start: -1, NodeWeight: nodeWeight, name: "WRW"}
}

// Name implements Sampler.
func (w *WRW) Name() string { return w.name }

// Sample implements Sampler.
func (w *WRW) Sample(r *rand.Rand, g *graph.Graph, n int) (*Sample, error) {
	if err := validateWalkParams("WRW", w.BurnIn, w.Thin); err != nil {
		return nil, err
	}
	st, err := NewWRWStepper(g, w.NodeWeight)
	if err != nil {
		return nil, err
	}
	var cur int32
	if w.Start >= 0 {
		cur = w.Start
		if int(cur) >= g.N() || g.Degree(cur) == 0 {
			return nil, fmt.Errorf("sample: invalid start node %d", cur)
		}
	} else if cur, err = randomStart(r, g); err != nil {
		return nil, err
	}
	return stepSample(r, st, cur, n, w.BurnIn, w.Thin, true), nil
}

// SWRWConfig parameterizes the stratified weighted random walk (S-WRW) of
// Kurant et al. [35] as used in §6.3 and §7 of the paper.
type SWRWConfig struct {
	// CategoryWeight[c] is the importance weight of category c. The paper's
	// simulations use equal weights for all categories. Nil means equal.
	CategoryWeight []float64
	// IrrelevantWeight is the relative weight given to uncategorized nodes
	// (the paper's f̃⊖ = 0 setting means "as few samples there as
	// possible"; the walk still needs positive weight to traverse them).
	// It is expressed as a fraction of the smallest relevant node weight
	// and defaults to 0.01.
	IrrelevantWeight float64
	BurnIn           int
	Thin             int
}

// NewSWRW builds the S-WRW sampler for g: each node v in category C gets
// stratification weight CategoryWeight[C]/vol(C), which makes the walk spend
// (approximately) equal aggregate time in every category — i.e. it
// oversamples small categories, by one order of magnitude and more in the
// paper's college dataset (Fig. 5(b)). Uncategorized nodes get a small
// positive weight so the walk can cross them.
func NewSWRW(g *graph.Graph, cfg SWRWConfig) (*WRW, error) {
	if !g.HasCategories() {
		return nil, fmt.Errorf("sample: S-WRW needs a categorized graph")
	}
	k := g.NumCategories()
	cw := cfg.CategoryWeight
	if cw == nil {
		cw = make([]float64, k)
		for i := range cw {
			cw[i] = 1
		}
	}
	if len(cw) != k {
		return nil, fmt.Errorf("sample: %d category weights for %d categories", len(cw), k)
	}
	irr := cfg.IrrelevantWeight
	if irr <= 0 {
		irr = 0.01
	}
	nw := make([]float64, g.N())
	minRelevant := -1.0
	for v := range nw {
		c := g.Category(int32(v))
		if c == graph.None {
			continue
		}
		vol := float64(g.CategoryVolume(c))
		if vol == 0 {
			continue
		}
		nw[v] = cw[c] / vol
		if minRelevant < 0 || nw[v] < minRelevant {
			minRelevant = nw[v]
		}
	}
	if minRelevant < 0 {
		return nil, fmt.Errorf("sample: no categorized node with positive volume")
	}
	for v := range nw {
		if nw[v] == 0 {
			nw[v] = irr * minRelevant
		}
	}
	w := NewWRW(nw, cfg.BurnIn)
	w.Thin = max(cfg.Thin, 1)
	w.name = "S-WRW"
	return w, nil
}

// Walks draws `walks` independent samples of perWalk draws each using the
// given sampler — the multi-crawl design of the paper's Facebook datasets
// (Table 2: 28 and 25 independent walks).
func Walks(r *rand.Rand, g *graph.Graph, s Sampler, walks, perWalk int) ([]*Sample, error) {
	out := make([]*Sample, walks)
	for i := range out {
		var err error
		out[i], err = s.Sample(r, g, perWalk)
		if err != nil {
			return nil, fmt.Errorf("sample: walk %d: %w", i, err)
		}
	}
	return out, nil
}
