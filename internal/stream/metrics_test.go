package stream

import (
	"testing"

	"repro/internal/sample"
)

// TestIngestCountersMove checks the process-wide ingest counters: applied
// records advance IngestedTotal (once per record, batches included) and
// validation failures advance RejectedTotal. Totals are asserted as deltas —
// the counters are shared with every other test in the process.
func TestIngestCountersMove(t *testing.T) {
	a, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	ingBefore, rejBefore := IngestedTotal(), RejectedTotal()
	if err := a.Ingest(sample.NodeObservation{Node: 1, Cat: 0}); err != nil {
		t.Fatal(err)
	}
	if n, err := a.IngestBatch([]sample.NodeObservation{{Node: 2, Cat: 1}, {Node: 3, Cat: 0}}); err != nil || n != 2 {
		t.Fatalf("batch: n=%d err=%v", n, err)
	}
	if got := IngestedTotal() - ingBefore; got != 3 {
		t.Errorf("IngestedTotal advanced by %d, want 3", got)
	}
	if got := RejectedTotal() - rejBefore; got != 0 {
		t.Errorf("RejectedTotal advanced by %d on valid records, want 0", got)
	}
	if err := a.Ingest(sample.NodeObservation{Node: 9, Cat: 7}); err == nil {
		t.Fatal("out-of-range category was accepted")
	}
	if err := a.Ingest(sample.NodeObservation{Node: 9, Cat: 0, Weight: -1}); err == nil {
		t.Fatal("negative weight was accepted")
	}
	if got := RejectedTotal() - rejBefore; got != 2 {
		t.Errorf("RejectedTotal advanced by %d after 2 rejections, want 2", got)
	}
	if got := IngestedTotal() - ingBefore; got != 3 {
		t.Errorf("IngestedTotal advanced by %d, rejected records must not count", got)
	}
	// A failing batch still counts its applied prefix.
	if n, _ := a.IngestBatch([]sample.NodeObservation{{Node: 4, Cat: 1}, {Node: 5, Cat: 9}}); n != 1 {
		t.Fatalf("batch prefix: n=%d, want 1", n)
	}
	if got := IngestedTotal() - ingBefore; got != 4 {
		t.Errorf("IngestedTotal advanced by %d after partial batch, want 4", got)
	}
}

// BenchmarkIngestInstrumentationOverhead prices exactly what instrumentation
// added to one applied record on the non-bootstrap hot path: the
// replicates-enabled branch check plus one striped counter add. Compare
// against BenchmarkStreamIngest (repo root) to put it in context — the full
// ingest is an order of magnitude more per record, so the overhead sits far
// under the 5% bench-gate target.
func BenchmarkIngestInstrumentationOverhead(b *testing.B) {
	a, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a.reps != nil {
			b.Fatal("bootstrap off in this benchmark")
		}
		mIngested.Inc()
	}
}
