package stream

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/randx"
	"repro/internal/sample"
)

// testGraph builds a small social graph with planted communities as
// categories — small enough that long samples revisit nodes often, which
// stresses the incremental multiplicity updates.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.Social(randx.New(42), gen.SocialConfig{
		N: 600, MeanDeg: 12, Dist: gen.PowerLaw, Shape: 2.5,
		Comms: 8, CommZipf: 0.8, Mixing: 0.35, Connect: true, SetAsCats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSamplers(t testing.TB, g *graph.Graph) map[string]sample.Sampler {
	t.Helper()
	wis, err := sample.NewDegreeWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]sample.Sampler{
		"UIS": sample.UIS{},
		"WIS": wis,
		"RW":  sample.NewRW(200),
	}
}

// maxRelDiff returns max_i |a_i − b_i| / max(1, |b_i|).
func maxRelDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if math.IsNaN(a[i]) && math.IsNaN(b[i]) {
			continue
		}
		d := math.Abs(a[i]-b[i]) / math.Max(1, math.Abs(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// weightsMaxDiff returns the largest absolute difference over the union of
// two pair-weight tables, skipping pairs that are NaN in both.
func weightsMaxDiff(a, b *core.PairWeights) float64 {
	var m float64
	check := func(x, y int32, w, other float64) {
		if math.IsNaN(w) && math.IsNaN(other) {
			return
		}
		if d := math.Abs(w - other); d > m {
			m = d
		}
	}
	a.ForEach(func(x, y int32, w float64) { check(x, y, w, b.Get(x, y)) })
	b.ForEach(func(x, y int32, w float64) { check(x, y, w, a.Get(x, y)) })
	return m
}

// TestStreamBatchParity is the property test of the acceptance criteria:
// for identical observations, Accumulator.Snapshot must match core.Estimate
// to within 1e-9, across UIS/WIS/RW samplers and both scenarios — including
// at intermediate prefixes of the stream, where the incremental re-draw
// bookkeeping has to agree with a from-scratch batch recompute.
func TestStreamBatchParity(t *testing.T) {
	g := testGraph(t)
	N := float64(g.N())
	const draws = 4000
	for name, smp := range testSamplers(t, g) {
		for _, star := range []bool{false, true} {
			scenario := "induced"
			if star {
				scenario = "star"
			}
			t.Run(name+"/"+scenario, func(t *testing.T) {
				s, err := smp.Sample(randx.New(7), g, draws)
				if err != nil {
					t.Fatal(err)
				}
				so, err := sample.NewStreamObserver(g, star)
				if err != nil {
					t.Fatal(err)
				}
				acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: star, N: N})
				if err != nil {
					t.Fatal(err)
				}
				checkpoints := map[int]bool{100: true, 1000: true, draws: true}
				var batch []sample.NodeObservation
				flush := func() {
					if len(batch) == 0 {
						return
					}
					if _, err := acc.IngestBatch(batch); err != nil {
						t.Fatal(err)
					}
					batch = batch[:0]
				}
				for i, v := range s.Nodes {
					rec := so.Observe(v, s.Weight(i))
					// Alternate single and batched ingestion, preserving
					// stream order (records reference earlier records).
					if i%37 == 0 {
						flush()
						if err := acc.Ingest(rec); err != nil {
							t.Fatal(err)
						}
					} else {
						batch = append(batch, rec)
						if len(batch) == 16 {
							flush()
						}
					}
					n := i + 1
					if !checkpoints[n] {
						continue
					}
					flush()
					snap, err := acc.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if snap.Draws != n {
						t.Fatalf("at %d: snapshot draws %d", n, snap.Draws)
					}
					var o *sample.Observation
					if star {
						o, err = sample.ObserveStar(g, s.Prefix(n))
					} else {
						o, err = sample.ObserveInduced(g, s.Prefix(n))
					}
					if err != nil {
						t.Fatal(err)
					}
					want, err := core.Estimate(o, core.Options{N: N})
					if err != nil {
						t.Fatal(err)
					}
					if d := maxRelDiff(snap.Result.Sizes, want.Sizes); d > 1e-9 {
						t.Fatalf("at %d draws: size mismatch %g", n, d)
					}
					if d := weightsMaxDiff(snap.Result.Weights, want.Weights); d > 1e-9 {
						t.Fatalf("at %d draws: weight mismatch %g", n, d)
					}
					var wantWithin []float64
					if star {
						wantWithin, err = core.WithinWeightsStar(o, want.Sizes)
					} else {
						wantWithin, err = core.WithinWeightsInduced(o)
					}
					if err != nil {
						t.Fatal(err)
					}
					if d := maxRelDiff(snap.Within, wantWithin); d > 1e-9 {
						t.Fatalf("at %d draws: within mismatch %g", n, d)
					}
				}
			})
		}
	}
}

// TestPopulationEstimateParity checks that the accumulator's running
// collision estimator matches core.PopulationSize on the same sample.
func TestPopulationEstimateParity(t *testing.T) {
	g := testGraph(t)
	wis, err := sample.NewDegreeWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := wis.Sample(randx.New(3), g, 2000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes {
		if err := acc.Ingest(so.Observe(v, s.Weight(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := core.PopulationSize(s)
	if math.Abs(snap.PopEstimate-want)/want > 1e-9 {
		t.Fatalf("pop estimate %g, want %g", snap.PopEstimate, want)
	}
	if snap.PopEstimate < float64(g.N())/3 || snap.PopEstimate > float64(g.N())*3 {
		t.Fatalf("pop estimate %g wildly off true N=%d", snap.PopEstimate, g.N())
	}
}

// TestConvergenceTracking checks that snapshot deltas start at +Inf, then
// reflect the estimate movement between snapshots and shrink as the sample
// grows.
func TestConvergenceTracking(t *testing.T) {
	g := testGraph(t)
	s, err := sample.UIS{}.Sample(randx.New(5), g, 30000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	var deltas []float64
	for i, v := range s.Nodes {
		if err := acc.Ingest(so.Observe(v, s.Weight(i))); err != nil {
			t.Fatal(err)
		}
		n := i + 1
		if n == 100 || n == 1000 || n == 3000 || n == 10000 || n == 30000 {
			snap, err := acc.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if n == 100 {
				if !math.IsInf(snap.Converge.SizeDelta, 1) || !math.IsInf(snap.Converge.WeightDelta, 1) {
					t.Fatalf("first snapshot deltas not +Inf: %+v", snap.Converge)
				}
				if snap.Converge.DrawsSince != 100 {
					t.Fatalf("first DrawsSince = %d", snap.Converge.DrawsSince)
				}
				continue
			}
			deltas = append(deltas, snap.Converge.SizeDelta)
		}
	}
	// Doubling the sample repeatedly must eventually calm the estimate:
	// the last delta should be well below the first measured one.
	if len(deltas) < 3 || !(deltas[len(deltas)-1] < deltas[0]) {
		t.Fatalf("size deltas did not shrink: %v", deltas)
	}
	if deltas[len(deltas)-1] <= 0 {
		t.Fatalf("last delta should be positive, got %v", deltas)
	}
}

// TestConcurrentIngestAndSnapshot is the acceptance-criteria race test: many
// goroutines ingest shards of a star record stream (every record carrying
// full neighbor info, as concurrent crawlers would send) while others
// snapshot continuously; the final estimate must match the batch estimate of
// the union sample.
func TestConcurrentIngestAndSnapshot(t *testing.T) {
	g := testGraph(t)
	N := float64(g.N())
	s, err := sample.UIS{}.Sample(randx.New(9), g, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// Build self-contained star records (neighbor info on every record).
	recs := make([]sample.NodeObservation, s.Len())
	for i, v := range s.Nodes {
		so, err := sample.NewStreamObserver(g, true)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = so.Observe(v, s.Weight(i))
	}
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: N})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []sample.NodeObservation
			for i := w; i < len(recs); i += workers {
				if i%5 == 0 {
					if err := acc.Ingest(recs[i]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				batch = append(batch, recs[i])
				if len(batch) == 32 {
					if _, err := acc.IngestBatch(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := acc.IngestBatch(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, err := acc.Snapshot(); err == nil {
					if snap.Draws > len(recs) {
						t.Errorf("snapshot draws %d exceeds stream length", snap.Draws)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		return
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Draws != s.Len() || snap.Distinct != distinctCount(s) {
		t.Fatalf("draws=%d distinct=%d, want %d/%d", snap.Draws, snap.Distinct, s.Len(), distinctCount(s))
	}
	o, err := sample.ObserveStar(g, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Estimate(o, core.Options{N: N})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(snap.Result.Sizes, want.Sizes); d > 1e-9 {
		t.Fatalf("size mismatch after concurrent ingest: %g", d)
	}
	if d := weightsMaxDiff(snap.Result.Weights, want.Weights); d > 1e-9 {
		t.Fatalf("weight mismatch after concurrent ingest: %g", d)
	}
}

// TestLateStarInfoBackfill checks that star data arriving only on a later
// draw of a node retroactively covers its earlier draws, so the estimate
// matches a stream that carried the info from the start.
func TestLateStarInfoBackfill(t *testing.T) {
	late, err := NewAccumulator(Config{K: 2, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	early, err := NewAccumulator(Config{K: 2, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	info := sample.NodeObservation{Node: 1, Cat: 0, Deg: 4, NbrCat: []int32{0, 1}, NbrCnt: []float64{1, 3}}
	bare := sample.NodeObservation{Node: 1, Cat: 0}
	other := sample.NodeObservation{Node: 2, Cat: 1, Deg: 2, NbrCat: []int32{0}, NbrCnt: []float64{2}}
	for _, rec := range []sample.NodeObservation{bare, bare, info, other} {
		if err := late.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range []sample.NodeObservation{info, bare, bare, other} {
		if err := early.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	sl, err := late.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	se, err := early.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(sl.Result.Sizes, se.Result.Sizes); d > 1e-12 {
		t.Fatalf("late star info biased sizes by %g: late %v early %v", d, sl.Result.Sizes, se.Result.Sizes)
	}
	if d := weightsMaxDiff(sl.Result.Weights, se.Result.Weights); d > 1e-12 {
		t.Fatalf("late star info biased weights by %g", d)
	}
}

// TestIngestRejectsNegativeCounts checks the public-endpoint hardening.
func TestIngestRejectsNegativeCounts(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, NbrCat: []int32{1}, NbrCnt: []float64{-3}}); err == nil {
		t.Fatal("expected error for negative neighbor count")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Deg: math.NaN(), NbrCat: []int32{1}, NbrCnt: []float64{1}}); err == nil {
		t.Fatal("expected error for NaN degree")
	}
	if acc.Draws() != 0 {
		t.Fatalf("rejected records mutated state: %d draws", acc.Draws())
	}
}

// TestIngestRejectsConflictingRedraw is the silent-corruption regression
// test: a re-draw record whose category or weight contradicts the node's
// first observation used to be silently folded in under the old metadata;
// it must now be rejected without changing any state.
func TestIngestRejectsConflictingRedraw(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 3, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	first := sample.NodeObservation{Node: 1, Weight: 2, Cat: 0, Deg: 1, NbrCat: []int32{1}, NbrCnt: []float64{1}}
	if err := acc.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: 2, Cat: 1}); err == nil {
		t.Fatal("expected error for conflicting category on re-draw")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: 5, Cat: 0}); err == nil {
		t.Fatal("expected error for conflicting weight on re-draw")
	}
	if acc.Draws() != 1 {
		t.Fatalf("rejected re-draws mutated state: %d draws", acc.Draws())
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: 2, Cat: 0}); err != nil {
		t.Fatalf("consistent re-draw rejected: %v", err)
	}
	// An omitted weight (0) on a re-draw inherits the recorded one, so
	// crawlers may send the weight only on a node's first record.
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0}); err != nil {
		t.Fatalf("weight-omitted re-draw rejected: %v", err)
	}
	if acc.Draws() != 3 {
		t.Fatalf("draws = %d, want 3", acc.Draws())
	}
}

// TestIngestRejectsInvalidWeight is the weight-coercion regression test:
// negative and NaN weights used to be silently coerced to 1; only weight 0
// means 1.
func TestIngestRejectsInvalidWeight(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: -3, Cat: 0}); err == nil {
		t.Fatal("expected error for negative weight")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: math.NaN(), Cat: 0}); err == nil {
		t.Fatal("expected error for NaN weight")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Weight: math.Inf(1), Cat: 0}); err == nil {
		t.Fatal("expected error for +Inf weight (would poison the collision statistics)")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Deg: math.Inf(1), NbrCat: []int32{1}, NbrCnt: []float64{1}}); err == nil {
		t.Fatal("expected error for +Inf degree")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, NbrCat: []int32{1}, NbrCnt: []float64{math.Inf(1)}}); err == nil {
		t.Fatal("expected error for +Inf neighbor count")
	}
	if acc.Draws() != 0 {
		t.Fatalf("rejected records mutated state: %d draws", acc.Draws())
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0}); err != nil {
		t.Fatalf("weight 0 (meaning 1) rejected: %v", err)
	}
}

// TestStarOnlyDegreeRedelivery is the regression test for the silent
// double-count: a node whose neighbors are all uncategorized records a
// positive degree with an empty count list, and an identical re-delivery
// used to re-trigger the record+backfill branch (the nil-slice sentinel
// never tripped), inflating the degree mass — and conflicting re-deliveries
// slipped through the same hole.
func TestStarOnlyDegreeRedelivery(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := sample.NodeObservation{Node: 1, Cat: 0, Deg: 5}
	if err := acc.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(rec); err != nil {
		t.Fatalf("identical star-only re-delivery rejected: %v", err)
	}
	if acc.sums.DegNum != 10 {
		t.Fatalf("DegNum = %g after two deg-5 draws, want 10 (re-delivery double-counted)", acc.sums.DegNum)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Deg: 9}); err == nil {
		t.Fatal("expected error for conflicting degree re-delivery")
	}
	if acc.sums.DegNum != 10 || acc.Draws() != 2 {
		t.Fatalf("rejected re-delivery mutated state: DegNum=%g draws=%d", acc.sums.DegNum, acc.Draws())
	}
}

// TestIngestRejectsConflictingStarRedelivery checks that star data arriving
// again for a node must match the recorded constants: identical
// re-deliveries (concurrent crawlers) pass, contradictions are rejected
// instead of silently dropped.
func TestIngestRejectsConflictingStarRedelivery(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 3, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	info := sample.NodeObservation{Node: 1, Cat: 0, Deg: 4, NbrCat: []int32{1, 2}, NbrCnt: []float64{2, 1}}
	if err := acc.Ingest(info); err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(info); err != nil {
		t.Fatalf("identical star re-delivery rejected: %v", err)
	}
	// The same star data with the categories listed in a different order
	// (e.g. a client building the list from map iteration) is identical
	// data and must pass.
	permuted := sample.NodeObservation{Node: 1, Cat: 0, Deg: 4, NbrCat: []int32{2, 1}, NbrCnt: []float64{1, 2}}
	if err := acc.Ingest(permuted); err != nil {
		t.Fatalf("order-permuted star re-delivery rejected: %v", err)
	}
	// A counts-only re-delivery (documented convention) cannot attest the
	// full degree — the node has an uncategorized neighbor (deg 4, counts
	// sum 3) — so only the counts are compared.
	countsOnly := sample.NodeObservation{Node: 1, Cat: 0, NbrCat: []int32{1, 2}, NbrCnt: []float64{2, 1}}
	if err := acc.Ingest(countsOnly); err != nil {
		t.Fatalf("counts-only star re-delivery rejected: %v", err)
	}
	// A crawler that fills deg on every record but sends counts once is
	// equally conventional: a deg-only re-draw attests no counts.
	degOnly := sample.NodeObservation{Node: 1, Cat: 0, Deg: 4}
	if err := acc.Ingest(degOnly); err != nil {
		t.Fatalf("deg-only star re-delivery rejected: %v", err)
	}
	bad := info
	bad.NbrCnt = []float64{3, 1}
	if err := acc.Ingest(bad); err == nil {
		t.Fatal("expected error for conflicting neighbor counts")
	}
	bad = info
	bad.Deg = 9
	if err := acc.Ingest(bad); err == nil {
		t.Fatal("expected error for conflicting degree")
	}
	bad = info
	bad.NbrCat = []int32{1}
	bad.NbrCnt = []float64{2}
	if err := acc.Ingest(bad); err == nil {
		t.Fatal("expected error for conflicting neighbor-category set")
	}
	if acc.Draws() != 5 {
		t.Fatalf("draws = %d, want 5 (conflicts must not ingest)", acc.Draws())
	}
}

// TestDegFirstThenCountsAdoption covers the other mixed-convention order: a
// deg-only record arrives first, the counts-carrying record later; the
// counts are adopted (with the earlier draws' neighbor mass retrofitted),
// so both delivery orders converge on the same sums.
func TestDegFirstThenCountsAdoption(t *testing.T) {
	degFirst, err := NewAccumulator(Config{K: 3, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	countsFirst, err := NewAccumulator(Config{K: 3, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	degOnly := sample.NodeObservation{Node: 1, Cat: 0, Deg: 5}
	full := sample.NodeObservation{Node: 1, Cat: 0, Deg: 5, NbrCat: []int32{1}, NbrCnt: []float64{3}}
	other := sample.NodeObservation{Node: 2, Cat: 1, Deg: 2, NbrCat: []int32{0}, NbrCnt: []float64{2}}
	for _, rec := range []sample.NodeObservation{degOnly, degOnly, full, other} {
		if err := degFirst.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range []sample.NodeObservation{full, degOnly, degOnly, other} {
		if err := countsFirst.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if degFirst.sums.DegNum != countsFirst.sums.DegNum || degFirst.sums.NbrNum[1] != countsFirst.sums.NbrNum[1] {
		t.Fatalf("delivery order changed sums: DegNum %g vs %g, NbrNum[1] %g vs %g",
			degFirst.sums.DegNum, countsFirst.sums.DegNum, degFirst.sums.NbrNum[1], countsFirst.sums.NbrNum[1])
	}
	sa, err := degFirst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := countsFirst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(sa.Result.Sizes, sb.Result.Sizes); d > 1e-12 {
		t.Fatalf("delivery order biased sizes by %g", d)
	}
	// Counts exceeding the recorded explicit degree are a contradiction.
	if err := degFirst.Ingest(sample.NodeObservation{Node: 1, Cat: 0, NbrCat: []int32{1, 2}, NbrCnt: []float64{3, 4}}); err == nil {
		t.Fatal("expected error for adopted counts exceeding the recorded degree")
	}
	// An impossible first record (explicit degree below its counts sum) is
	// rejected outright.
	if err := degFirst.Ingest(sample.NodeObservation{Node: 9, Cat: 0, Deg: 2, NbrCat: []int32{1}, NbrCnt: []float64{5}}); err == nil {
		t.Fatal("expected error for degree below the counts sum on a first record")
	}
	// A negative degree is rejected, not silently treated as a bare draw.
	if err := degFirst.Ingest(sample.NodeObservation{Node: 9, Cat: 0, Deg: -3}); err == nil {
		t.Fatal("expected error for negative degree")
	}
}

// TestCountsOnlyThenExplicitDegreeUpgrade covers the mixed-convention feed:
// a counts-only crawler records a derived lower-bound degree (uncategorized
// neighbors invisible), and a later record carrying the true explicit
// degree upgrades it — including the degree mass of the earlier draws — so
// the estimate converges on the full-information crawl instead of
// rejecting a correct record.
func TestCountsOnlyThenExplicitDegreeUpgrade(t *testing.T) {
	mixed, err := NewAccumulator(Config{K: 3, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewAccumulator(Config{K: 3, Star: true, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	countsOnly := sample.NodeObservation{Node: 1, Cat: 0, NbrCat: []int32{1}, NbrCnt: []float64{3}}
	explicit := sample.NodeObservation{Node: 1, Cat: 0, Deg: 5, NbrCat: []int32{1}, NbrCnt: []float64{3}}
	other := sample.NodeObservation{Node: 2, Cat: 1, Deg: 2, NbrCat: []int32{0}, NbrCnt: []float64{2}}
	for _, rec := range []sample.NodeObservation{countsOnly, countsOnly, explicit, other} {
		if err := mixed.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range []sample.NodeObservation{explicit, explicit, explicit, other} {
		if err := full.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if mixed.sums.DegNum != full.sums.DegNum {
		t.Fatalf("DegNum = %g after upgrade, want %g (retrofit missing)", mixed.sums.DegNum, full.sums.DegNum)
	}
	sm, err := mixed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sf, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(sm.Result.Sizes, sf.Result.Sizes); d > 1e-12 {
		t.Fatalf("upgrade left sizes biased by %g: %v vs %v", d, sm.Result.Sizes, sf.Result.Sizes)
	}
	// An explicit degree below the counts-derived bound is a genuine
	// contradiction, not a convention difference.
	if err := mixed.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Deg: 2, NbrCat: []int32{1}, NbrCnt: []float64{3}}); err == nil {
		t.Fatal("expected error for explicit degree below the counts sum")
	}
}

func distinctCount(s *sample.Sample) int {
	seen := map[int32]bool{}
	for _, v := range s.Nodes {
		seen[v] = true
	}
	return len(seen)
}

// TestIngestValidation checks that invalid records are rejected without
// corrupting accumulator state.
func TestIngestValidation(t *testing.T) {
	acc, err := NewAccumulator(Config{K: 3, Star: false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccumulator(Config{K: 0}); err == nil {
		t.Fatal("expected error for K = 0")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 5}); err == nil {
		t.Fatal("expected error for out-of-range category")
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Peers: []int32{2}}); err == nil {
		t.Fatal("expected error for unknown peer")
	}
	// Scenario mismatches are rejected loudly instead of silently serving
	// garbage: star fields into an induced accumulator and vice versa.
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Deg: 3, NbrCat: []int32{1}, NbrCnt: []float64{3}}); err == nil {
		t.Fatal("expected error for star record in induced accumulator")
	}
	starAcc, err := NewAccumulator(Config{K: 3, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := starAcc.Ingest(sample.NodeObservation{Node: 1, Cat: 0, Peers: []int32{2}}); err == nil {
		t.Fatal("expected error for induced record in star accumulator")
	}
	if acc.Draws() != 0 || acc.Distinct() != 0 {
		t.Fatalf("rejected records mutated state: draws=%d distinct=%d", acc.Draws(), acc.Distinct())
	}
	if _, err := acc.Snapshot(); err == nil {
		t.Fatal("expected error snapshotting an empty accumulator")
	}
	// Duplicate edge reports — within one record's peer list, across
	// records, and from the opposite endpoint — are ignored rather than
	// double counted.
	if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 0}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 2, Cat: 1, Peers: []int32{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(sample.NodeObservation{Node: 2, Cat: 1, Peers: []int32{1}}); err != nil {
		t.Fatal(err)
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// One edge between categories 0 and 1 with mult 1·2, rew 1 and 2.
	if w := snap.Result.Weights.Get(0, 1); math.Abs(w-1) > 1e-12 {
		t.Fatalf("duplicate edge report changed weight: %g", w)
	}
}
