package stream

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/sample"
	"repro/internal/uncert"
)

// BenchmarkExportDuringIngest measures the ingest path's latency tail while
// concurrent exporters continuously pull State copies — the serving-daemon
// situation where /sums polling (a merge coordinator) or checkpointing runs
// against live ingest. The p99-ns metric is the point of the benchmark: a
// deep copy of the B=200 replicate grids taken while holding the publish
// mutex stalls every ingest for the whole copy, which the two-phase export
// (allocate outside the lock, memcpy inside) keeps off the tail.
func BenchmarkExportDuringIngest(b *testing.B) {
	const k, B = 20, 200
	cfg := Config{K: k, Star: true, Replicates: uncert.Config{B: B, Seed: 1}}
	for _, mode := range []string{"single", "epoch"} {
		for _, exporters := range []int{0, 2} {
			b.Run(fmt.Sprintf("%s/exporters=%d", mode, exporters), func(b *testing.B) {
				var acc Ingester
				var err error
				if mode == "single" {
					acc, err = NewAccumulator(cfg)
				} else {
					acc, err = NewEpochAccumulator(cfg, 64)
				}
				if err != nil {
					b.Fatal(err)
				}
				// Populate the pair tables and replicate grids so every
				// export copies a realistic amount of state.
				for i := 0; i < 4000; i++ {
					if err := acc.Ingest(benchObs(int32(i % 1000))); err != nil {
						b.Fatal(err)
					}
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for e := 0; e < exporters; e++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							if _, err := acc.Export(); err != nil {
								panic(err)
							}
						}
					}()
				}
				lat := make([]time.Duration, b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					if err := acc.Ingest(benchObs(int32(i % 1000))); err != nil {
						b.Fatal(err)
					}
					lat[i] = time.Since(t0)
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				b.ReportMetric(float64(lat[len(lat)*50/100]), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
			})
		}
	}
}

// benchObs builds a star observation of one node with a few categorized
// neighbors, cycling categories so the pair tables fill out.
func benchObs(node int32) sample.NodeObservation {
	c := node % 20
	return sample.NodeObservation{
		Node:   node,
		Cat:    c,
		Deg:    5,
		NbrCat: []int32{(c + 1) % 20, (c + 3) % 20},
		NbrCnt: []float64{3, 2},
	}
}
