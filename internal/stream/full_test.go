package stream

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sample"
	"repro/internal/uncert"
)

// fullObs builds the i-th record of a deterministic star stream with node
// re-draws (node = i mod 37), per-node constant weights and star data, and a
// star-less record every third draw so restores must preserve the late-star
// backfill state (starSeen) too.
func fullObs(i int) sample.NodeObservation {
	node := int32(i % 37)
	c := node % 5
	obs := sample.NodeObservation{
		Node:   node,
		Cat:    c,
		Weight: 1 + float64(node%7)/4,
	}
	if i%3 != 0 {
		obs.Deg = float64(3 + node%9)
		obs.NbrCat = []int32{(c + 1) % 5, (c + 3) % 5}
		obs.NbrCnt = []float64{2, 1}
	}
	return obs
}

func mustIngest(t *testing.T, acc Ingester, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := acc.Ingest(fullObs(i)); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

// requireFullEqual pins two full states to each other: scalars, sums,
// replicate grids, and the node directory. With tol == 0 the comparison is
// bit-exact (same accumulator design on both sides runs identical float
// operations in identical order); cross-design comparisons pass a tolerance,
// since the epoch merge sums star mass in a different order than the
// single-lock per-record path (the documented ≤ 1e-9 agreement).
func requireFullEqual(t *testing.T, want, got *FullState, tol float64) {
	t.Helper()
	close := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	closeVec := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if !close(a[i], b[i]) {
				t.Fatalf("%s[%d] diverged: %g vs %g", name, i, a[i], b[i])
			}
		}
	}
	w, g := want.State, got.State
	if w.Gen != g.Gen || w.Distinct != g.Distinct {
		t.Fatalf("cut mismatch: gen %d vs %d, distinct %d vs %d", w.Gen, g.Gen, w.Distinct, g.Distinct)
	}
	if !close(w.Psi1, g.Psi1) || !close(w.PsiInv, g.PsiInv) || !close(w.Collisions, g.Collisions) {
		t.Fatalf("collision scalars diverged: (%g,%g,%g) vs (%g,%g,%g)",
			w.Psi1, w.PsiInv, w.Collisions, g.Psi1, g.PsiInv, g.Collisions)
	}
	if tol == 0 {
		if !reflect.DeepEqual(w.Sums, g.Sums) {
			t.Fatalf("sums diverged:\nwant %+v\ngot  %+v", w.Sums, g.Sums)
		}
	} else {
		if !close(w.Sums.Draws, g.Sums.Draws) || !close(w.Sums.TotalRew, g.Sums.TotalRew) ||
			!close(w.Sums.RewSq, g.Sums.RewSq) || !close(w.Sums.DegNum, g.Sums.DegNum) {
			t.Fatalf("sums scalars diverged")
		}
		closeVec("Rew", w.Sums.Rew, g.Sums.Rew)
		closeVec("DrawsA", w.Sums.DrawsA, g.Sums.DrawsA)
		closeVec("Rew2", w.Sums.Rew2, g.Sums.Rew2)
		closeVec("RewSqA", w.Sums.RewSqA, g.Sums.RewSqA)
		closeVec("DegNumA", w.Sums.DegNumA, g.Sums.DegNumA)
		closeVec("NbrNum", w.Sums.NbrNum, g.Sums.NbrNum)
		closeVec("WithinNum", w.Sums.WithinNum, g.Sums.WithinNum)
		if w.Sums.PairNum.Len() != g.Sums.PairNum.Len() {
			t.Fatalf("pair table size %d vs %d", w.Sums.PairNum.Len(), g.Sums.PairNum.Len())
		}
		w.Sums.PairNum.ForEach(func(a, b int32, wv float64) {
			if !close(wv, g.Sums.PairNum.Get(a, b)) {
				t.Fatalf("pair (%d,%d) diverged: %g vs %g", a, b, wv, g.Sums.PairNum.Get(a, b))
			}
		})
	}
	if (w.Reps == nil) != (g.Reps == nil) {
		t.Fatalf("replicates presence mismatch")
	}
	if w.Reps != nil {
		rw, rg := w.Reps.Raw(), g.Reps.Raw()
		vecs := [][2][]float64{
			{rw.Draws, rg.Draws}, {rw.TotalRew, rg.TotalRew}, {rw.RewSq, rg.RewSq},
			{rw.Psi1, rg.Psi1}, {rw.PsiInv, rg.PsiInv}, {rw.Coll, rg.Coll},
			{rw.DegNum, rg.DegNum}, {rw.Rew, rg.Rew}, {rw.DrawsA, rg.DrawsA},
			{rw.Rew2, rg.Rew2}, {rw.RewSqA, rg.RewSqA}, {rw.WithinNum, rg.WithinNum},
			{rw.DegNumA, rg.DegNumA}, {rw.NbrNum, rg.NbrNum},
		}
		for i, v := range vecs {
			closeVec(fmt.Sprintf("replicate vector %d", i), v[0], v[1])
		}
		if len(rw.Pairs) != len(rg.Pairs) {
			t.Fatalf("replicate pair count %d vs %d", len(rw.Pairs), len(rg.Pairs))
		}
		for key, wv := range rw.Pairs {
			closeVec(fmt.Sprintf("replicate pair %v", key), wv, rg.Pairs[key])
		}
	}
	if tol == 0 {
		if !reflect.DeepEqual(want.Nodes, got.Nodes) {
			t.Fatalf("node directory diverged:\nwant %+v\ngot  %+v", want.Nodes, got.Nodes)
		}
		return
	}
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("directory size %d vs %d", len(want.Nodes), len(got.Nodes))
	}
	for i := range want.Nodes {
		wn, gn := &want.Nodes[i], &got.Nodes[i]
		if wn.Node != gn.Node || wn.Cat != gn.Cat || wn.Mult != gn.Mult ||
			wn.Weight != gn.Weight || wn.StarSeen != gn.StarSeen || !close(wn.Deg, gn.Deg) {
			t.Fatalf("node record %d diverged:\nwant %+v\ngot  %+v", i, *wn, *gn)
		}
	}
}

// TestRestoreResumeExactness is the restart-resume invariant behind durable
// checkpointing: export mid-stream, restore into a fresh accumulator,
// continue ingesting the identical tail — and every estimate matches an
// uninterrupted run to ≤ 1e-9 (the state comparison is in fact bit-exact).
// The tail re-draws nodes from the head, so the restored node directory is
// load-bearing: collisions, re-draw validation and star backfill all depend
// on it. "cross" restores a single-lock export into an epoch-merged
// accumulator — the two designs share one resumable state.
func TestRestoreResumeExactness(t *testing.T) {
	const cut, end = 120, 240
	cfg := Config{K: 5, Star: true, N: 500, Replicates: uncert.Config{B: 32, Seed: 11}}
	build := func(mode string) Ingester {
		t.Helper()
		var acc Ingester
		var err error
		if mode == "epoch" {
			acc, err = NewEpochAccumulator(cfg, 16)
		} else {
			acc, err = NewAccumulator(cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	restore := func(mode string, fs *FullState) Ingester {
		t.Helper()
		var acc Ingester
		var err error
		if mode == "epoch" {
			acc, err = RestoreEpochAccumulator(cfg, 16, fs)
		} else {
			acc, err = RestoreAccumulator(cfg, fs)
		}
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	for _, tc := range []struct {
		name, from, to string
		tol            float64
	}{
		{"single", "single", "single", 0},
		{"epoch", "epoch", "epoch", 0},
		{"cross", "single", "epoch", 1e-9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			uninterrupted := build(tc.to)
			mustIngest(t, uninterrupted, 0, end)

			head := build(tc.from)
			mustIngest(t, head, 0, cut)
			fs, err := head.(FullExporter).ExportFull()
			if err != nil {
				t.Fatal(err)
			}
			// Poison the donor: the restored accumulator must share no
			// mutable state with the export.
			mustIngest(t, head, 0, 30)

			tail := restore(tc.to, fs)
			if tail.Gen() != uint64(cut) || tail.Distinct() != 37 {
				t.Fatalf("restored at gen %d, %d distinct; want %d, 37", tail.Gen(), tail.Distinct(), cut)
			}
			mustIngest(t, tail, cut, end)

			wantFS, err := uninterrupted.(FullExporter).ExportFull()
			if err != nil {
				t.Fatal(err)
			}
			gotFS, err := tail.(FullExporter).ExportFull()
			if err != nil {
				t.Fatal(err)
			}
			requireFullEqual(t, wantFS, gotFS, tc.tol)

			want, err := uninterrupted.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tail.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Result.Sizes {
				if d := math.Abs(want.Result.Sizes[i] - got.Result.Sizes[i]); d > 1e-9 {
					t.Fatalf("size[%d] off by %g after resume", i, d)
				}
			}
			if math.Abs(want.PopEstimate-got.PopEstimate) > 1e-9 {
				t.Fatalf("population estimate off: %g vs %g", want.PopEstimate, got.PopEstimate)
			}
			if want.Boot == nil || got.Boot == nil {
				t.Fatal("bootstrap snapshot missing after resume")
			}
		})
	}
}

// TestRestoreInducedPeers pins the induced-scenario half of the directory:
// after a restore, re-observing an edge the exported accumulator had already
// counted must not add its mass again.
func TestRestoreInducedPeers(t *testing.T) {
	cfg := Config{K: 2, Star: false, N: 10}
	ref, err := NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := []sample.NodeObservation{
		{Node: 1, Cat: 0},
		{Node: 2, Cat: 1, Peers: []int32{1}},
		{Node: 1, Cat: 0, Peers: []int32{2}}, // same edge, other endpoint
		{Node: 3, Cat: 1, Peers: []int32{1, 2}},
	}
	for _, r := range recs[:2] {
		if err := ref.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := ref.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreAccumulator(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[2:] {
		if err := ref.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := got.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	wantFS, err := ref.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	gotFS, err := got.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	requireFullEqual(t, wantFS, gotFS, 0)
}

// TestRestoreValidation exercises the identity checks: a FullState only
// restores under a configuration matching its partition, scenario and
// bootstrap shape, with a directory consistent with its scalars.
func TestRestoreValidation(t *testing.T) {
	cfg := Config{K: 5, Star: true, Replicates: uncert.Config{B: 8, Seed: 1}}
	acc, err := NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, acc, 0, 20)
	fs, err := acc.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Config{
		"k":         {K: 6, Star: true, Replicates: cfg.Replicates},
		"star":      {K: 5, Star: false, Replicates: cfg.Replicates},
		"reps-off":  {K: 5, Star: true},
		"reps-seed": {K: 5, Star: true, Replicates: uncert.Config{B: 8, Seed: 2}},
	} {
		if _, err := RestoreAccumulator(bad, fs); err == nil {
			t.Errorf("%s: restore accepted a mismatched config", name)
		}
	}
	fs.State.Distinct++
	if _, err := RestoreAccumulator(cfg, fs); err == nil {
		t.Error("restore accepted distinct ≠ len(nodes)")
	}
	fs.State.Distinct--
	fs.Nodes[1] = fs.Nodes[0]
	fs.State.Distinct = int64(len(fs.Nodes))
	if _, err := RestoreAccumulator(cfg, fs); err == nil {
		t.Error("restore accepted a duplicate node record")
	}
}

// TestExportFullDuringConcurrentFlushes runs ExportFull against concurrent
// Local flushes: every cut must be internally consistent — the directory's
// total multiplicity equal to the published draw count, distinct equal to
// the directory size — which is exactly what the flush gate guarantees.
func TestExportFullDuringConcurrentFlushes(t *testing.T) {
	cfg := Config{K: 5, Star: true, Replicates: uncert.Config{B: 8, Seed: 3}}
	ea, err := NewEpochAccumulator(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 600
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := ea.NewLocal()
			defer l.Close()
			for i := 0; i < perWriter; i++ {
				if err := l.Ingest(fullObs(i)); err != nil {
					panic(fmt.Sprintf("writer %d record %d: %v", w, i, err))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		fs, err := ea.ExportFull()
		if err != nil {
			t.Fatal(err)
		}
		var mult float64
		for i := range fs.Nodes {
			mult += fs.Nodes[i].Mult
		}
		if mult != fs.State.Sums.Draws {
			t.Fatalf("inconsistent cut: directory multiplicity %g, published draws %g", mult, fs.State.Sums.Draws)
		}
		if int64(len(fs.Nodes)) != fs.State.Distinct {
			t.Fatalf("inconsistent cut: %d directory nodes, distinct %d", len(fs.Nodes), fs.State.Distinct)
		}
		select {
		case <-done:
			if got := fs.State.Gen; got == uint64(writers*perWriter) {
				return
			}
		default:
		}
	}
}
