package stream

import (
	"fmt"

	"repro/internal/obs"
)

// Process-wide ingest instrumentation (obs.Default). The counters aggregate
// over every accumulator in the process — the serving daemon owns one, and
// every writer-local epoch publishes through the same flush path — so the
// totals are exactly what GET /metrics and /healthz want to report.
//
// Hot-path budget: the epoch-local ingest path costs ZERO shared atomics per
// record; applied records are counted once per flush (mIngested.Add(n)), and
// the single-lock Accumulator still pays one striped atomic add per record.
// The latency histograms are only touched on paths that are already micro-
// to millisecond-scale — snapshots, epoch flushes, and per-record ingest
// when the bootstrap replicate update dominates the record anyway.
var (
	mIngested = obs.NewCounter("stream_ingest_records_total",
		"Node observations successfully folded into any accumulator.")
	mRejected = obs.NewCounterVec("stream_ingest_rejected_total",
		"Node observations rejected at ingest validation, by reason.", "reason")
	mSnapshotSec = obs.NewHistogram("stream_snapshot_seconds",
		"Latency of accumulator snapshots (single-lock and epoch-merged, including bootstrap CI extraction).",
		obs.LatencyBuckets())
	mBootIngestSec = obs.NewHistogram("stream_bootstrap_ingest_seconds",
		"Per-record ingest latency when bootstrap replicates are enabled (includes the O(B) replicate update).",
		obs.LatencyBuckets())
	mFlushes = obs.NewCounter("stream_epoch_flushes_total",
		"Epoch flushes published by writer-local accumulators (including the internal per-call epochs behind EpochAccumulator.Ingest/IngestBatch).")
	mFlushSec = obs.NewHistogram("stream_epoch_flush_seconds",
		"Latency of publishing one epoch (reserve + batched statistics + merge).",
		obs.LatencyBuckets())
)

// IngestedTotal reports the process-wide count of successfully ingested
// records — surfaced by the daemon's /healthz.
func IngestedTotal() int64 { return mIngested.Value() }

// RejectedTotal reports the process-wide count of rejected records across
// all reasons.
func RejectedTotal() int64 { return mRejected.Total() }

// reject counts a validation failure under its reason label and returns the
// formatted error. The reject path is cold by definition — a label lookup
// per event is fine here, unlike on the applied-record path.
func reject(reason, format string, args ...any) error {
	mRejected.With(reason).Inc()
	return fmt.Errorf(format, args...)
}
