package stream

import (
	"fmt"

	"repro/internal/obs"
)

// Process-wide ingest instrumentation (obs.Default). The counters aggregate
// over every accumulator in the process — the serving daemon owns one (or
// one per shard, which all count through the same single-lock ingest path),
// so the totals are exactly what GET /metrics and /healthz want to report.
//
// Hot-path budget: a successfully applied record costs ONE striped atomic
// add (mIngested); batches pay it once per batch (Add(n)). The latency
// histograms are only touched on paths that are already micro- to
// millisecond-scale — snapshots, and per-record ingest when the O(B)
// bootstrap replicate update dominates the record anyway.
var (
	mIngested = obs.NewCounter("stream_ingest_records_total",
		"Node observations successfully folded into any accumulator.")
	mRejected = obs.NewCounterVec("stream_ingest_rejected_total",
		"Node observations rejected at ingest validation, by reason.", "reason")
	mSnapshotSec = obs.NewHistogram("stream_snapshot_seconds",
		"Latency of accumulator snapshots (single-lock and sharded, including bootstrap CI extraction).",
		obs.LatencyBuckets())
	mBootIngestSec = obs.NewHistogram("stream_bootstrap_ingest_seconds",
		"Per-record ingest latency when bootstrap replicates are enabled (includes the O(B) replicate update).",
		obs.LatencyBuckets())
)

// IngestedTotal reports the process-wide count of successfully ingested
// records — surfaced by the daemon's /healthz.
func IngestedTotal() int64 { return mIngested.Value() }

// RejectedTotal reports the process-wide count of rejected records across
// all reasons.
func RejectedTotal() int64 { return mRejected.Total() }

// reject counts a validation failure under its reason label and returns the
// formatted error. The reject path is cold by definition — a label lookup
// per event is fine here, unlike on the applied-record path.
func reject(reason, format string, args ...any) error {
	mRejected.With(reason).Inc()
	return fmt.Errorf(format, args...)
}
