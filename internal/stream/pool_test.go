package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// splitStream samples a star stream off the test graph and partitions it by
// node id across nWorkers accumulators while also feeding every record to a
// single pooled reference — the node-disjoint split under which the
// nonlinear collision and Rew2 statistics pool exactly.
func splitStream(t *testing.T, nWorkers, draws int, boot uncert.Config) (workers []*Accumulator, ref *Accumulator) {
	t.Helper()
	g := testGraph(t)
	s, err := sample.NewRW(100).Sample(randx.New(77), g, draws)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: g.NumCategories(), Star: true, N: float64(g.N()), Replicates: boot}
	ref, err = NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	workers = make([]*Accumulator, nWorkers)
	for i := range workers {
		if workers[i], err = NewAccumulator(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range s.Nodes {
		rec := so.Observe(v, s.Weight(i))
		if err := ref.Ingest(rec); err != nil {
			t.Fatal(err)
		}
		if err := workers[int(v)%nWorkers].Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	return workers, ref
}

func exportAll(t *testing.T, workers []*Accumulator) []*State {
	t.Helper()
	states := make([]*State, len(workers))
	for i, w := range workers {
		st, err := w.Export()
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	return states
}

// comparePoolToRef pins a rebuilt pool to a reference accumulator to ≤ tol
// relative error on sizes, within-weights, pair weights, the population
// estimate, and (when both carry a bootstrap) every CI endpoint.
func comparePoolToRef(t *testing.T, p *Pool, ref *Accumulator, tol float64) {
	t.Helper()
	got, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Draws != want.Draws {
		t.Fatalf("pool has %d draws, reference %d", got.Draws, want.Draws)
	}
	if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > tol {
		t.Errorf("pooled sizes differ from reference by %g > %g", d, tol)
	}
	if d := maxRelDiff(got.Within, want.Within); d > tol {
		t.Errorf("pooled within-weights differ from reference by %g > %g", d, tol)
	}
	if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > tol {
		t.Errorf("pooled pair weights differ from reference by %g > %g", d, tol)
	}
	if d := relDiff1(got.PopEstimate, want.PopEstimate); d > tol {
		t.Errorf("pooled population estimate %v vs reference %v (rel %g > %g)", got.PopEstimate, want.PopEstimate, d, tol)
	}
	if (got.Boot == nil) != (want.Boot == nil) {
		t.Fatalf("bootstrap presence: pool %v, reference %v", got.Boot != nil, want.Boot != nil)
	}
	if got.Boot == nil {
		return
	}
	for c := 0; c < p.cfg.K; c++ {
		gs, ws := got.Boot.SizeCI(c, 0.95), want.Boot.SizeCI(c, 0.95)
		gw, ww := got.Boot.WithinCI(c, 0.95), want.Boot.WithinCI(c, 0.95)
		for _, pair := range [][2]float64{{gs.Lo, ws.Lo}, {gs.Hi, ws.Hi}, {gw.Lo, ww.Lo}, {gw.Hi, ww.Hi}} {
			if d := relDiff1(pair[0], pair[1]); d > tol {
				t.Errorf("category %d CI endpoint differs by %g > %g (pool %v, reference %v)", c, d, tol, pair[0], pair[1])
			}
		}
	}
	gp, wp := got.Boot.PopCI(0.95), want.Boot.PopCI(0.95)
	if d := relDiff1(gp.Lo, wp.Lo); d > tol {
		t.Errorf("pop CI lo differs by %g > %g", d, tol)
	}
	if d := relDiff1(gp.Hi, wp.Hi); d > tol {
		t.Errorf("pop CI hi differs by %g > %g", d, tol)
	}
}

// relDiff1 is |a−b| / max(1, |b|) with NaN = NaN.
func relDiff1(a, b float64) float64 {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	return math.Abs(a-b) / math.Max(1, math.Abs(b))
}

// TestPoolMatchesPooledAccumulator is the in-process half of the headline
// distributed guarantee: 4 worker accumulators over a node-disjoint 4-way
// split of one stream, exported and re-merged by a Pool, agree with a single
// accumulator that ingested everything — to ≤ 1e-9 on every estimate and
// every bootstrap CI endpoint.
func TestPoolMatchesPooledAccumulator(t *testing.T) {
	workers, ref := splitStream(t, 4, 3000, uncert.Config{B: 40, Seed: 11})
	p, err := NewPool(Config{K: ref.cfg.K, Star: true, N: ref.cfg.N})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Rebuild(exportAll(t, workers)); err != nil {
		t.Fatal(err)
	}
	comparePoolToRef(t, p, ref, 1e-9)

	// Losing one worker must degrade coverage, never correctness: the
	// 3-worker pool equals a 3-worker reference exactly as the 4-worker
	// pool equals the 4-worker one.
	ref3, err := NewAccumulator(Config{K: ref.cfg.K, Star: true, N: ref.cfg.N, Replicates: uncert.Config{B: 40, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	states := exportAll(t, workers[:3])
	if err := p.Rebuild(states); err != nil {
		t.Fatal(err)
	}
	// Build the 3-worker reference by merging the same exports through a
	// second pool — and check it against a direct re-ingest below.
	g := testGraph(t)
	s, err := sample.NewRW(100).Sample(randx.New(77), g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes {
		if int(v)%4 == 3 {
			continue
		}
		if err := ref3.Ingest(so.Observe(v, s.Weight(i))); err != nil {
			t.Fatal(err)
		}
	}
	comparePoolToRef(t, p, ref3, 1e-9)
}

// TestPoolGenAdvancesPerRebuild pins the snapshot-cache contract.
func TestPoolGenAdvancesPerRebuild(t *testing.T) {
	workers, _ := splitStream(t, 2, 200, uncert.Config{})
	p, err := NewPool(Config{K: workers[0].cfg.K, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Gen() != 0 {
		t.Fatalf("fresh pool has gen %d, want 0", p.Gen())
	}
	states := exportAll(t, workers)
	for i := 1; i <= 3; i++ {
		if err := p.Rebuild(states); err != nil {
			t.Fatal(err)
		}
		if p.Gen() != uint64(i) {
			t.Fatalf("after %d rebuilds gen is %d", i, p.Gen())
		}
	}
}

func TestPoolIsReadOnly(t *testing.T) {
	p, err := NewPool(Config{K: 3, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(sample.NodeObservation{Node: 1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Ingest returned %v, want ErrReadOnly", err)
	}
	if n, err := p.IngestBatch(make([]sample.NodeObservation, 2)); n != 0 || !errors.Is(err, ErrReadOnly) {
		t.Fatalf("IngestBatch returned (%d, %v), want (0, ErrReadOnly)", n, err)
	}
	if _, err := p.Snapshot(); err == nil {
		t.Fatal("empty pool snapshot must fail")
	}
}

func TestPoolRejectsMismatchedStates(t *testing.T) {
	p, err := NewPool(Config{K: 3, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	good := &State{K: 3, Star: true, Sums: core.NewSums(3, true)}
	if err := p.Rebuild([]*State{good, {K: 4, Star: true, Sums: core.NewSums(4, true)}}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	if err := p.Rebuild([]*State{good, {K: 3, Star: false, Sums: core.NewSums(3, false)}}); err == nil {
		t.Fatal("scenario mismatch accepted")
	}
	if err := p.Rebuild([]*State{good, nil}); err == nil {
		t.Fatal("nil state accepted")
	}
	// A failed rebuild must not disturb the published view.
	if err := p.Rebuild([]*State{good}); err != nil {
		t.Fatal(err)
	}
	gen := p.Gen()
	if err := p.Rebuild([]*State{good, nil}); err == nil {
		t.Fatal("nil state accepted")
	}
	if p.Gen() != gen {
		t.Fatal("failed rebuild advanced the generation")
	}
}

// TestPoolDropsReplicatesOnConfigMismatch: workers disagreeing on the
// bootstrap configuration cannot contribute mergeable replicates — the pool
// keeps the primary estimate and drops the CIs instead of serving garbage.
func TestPoolDropsReplicatesOnConfigMismatch(t *testing.T) {
	g := testGraph(t)
	s, err := sample.NewRW(100).Sample(randx.New(5), g, 400)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(boot uncert.Config, pick func(int32) bool) *State {
		acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N()), Replicates: boot})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range s.Nodes {
			if !pick(v) {
				continue
			}
			if err := acc.Ingest(so.Observe(v, s.Weight(i))); err != nil {
				t.Fatal(err)
			}
		}
		st, err := acc.Export()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	even := mk(uncert.Config{B: 10, Seed: 1}, func(v int32) bool { return v%2 == 0 })
	oddOtherSeed := mk(uncert.Config{B: 10, Seed: 2}, func(v int32) bool { return v%2 == 1 })
	oddNoBoot := mk(uncert.Config{}, func(v int32) bool { return v%2 == 1 })

	for name, other := range map[string]*State{"seed_mismatch": oddOtherSeed, "missing_bootstrap": oddNoBoot} {
		p, err := NewPool(Config{K: g.NumCategories(), Star: true, N: float64(g.N())})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Rebuild([]*State{even, other}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if snap.Boot != nil {
			t.Errorf("%s: pool kept unmergeable replicates", name)
		}
		if p.Config().Replicates.Enabled() {
			t.Errorf("%s: pool config claims an enabled bootstrap", name)
		}
		if snap.Draws != len(s.Nodes) {
			t.Errorf("%s: pool has %d draws, want %d", name, snap.Draws, len(s.Nodes))
		}
	}
}
