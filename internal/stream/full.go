package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// NodeRecord is one entry of an accumulator's node directory in
// serialization-friendly form: the per-node constants (category, sampling
// weight), the draw multiplicity, and the scenario payload (reconciled star
// data, or the induced peer list). Together with a State it is everything an
// accumulator needs to RESUME a stream, not merely to estimate from it: a
// restore without the directory would treat a re-drawn node as fresh,
// undercounting collisions and double-counting star mass.
type NodeRecord struct {
	Node   int32
	Cat    int32
	Mult   float64
	Weight float64

	// Star scenario.
	StarSeen bool
	Deg      float64
	NbrCat   []int32
	NbrCnt   []float64

	// Induced scenario: distinct observed peers. Every edge of G[S] appears
	// in both endpoints' lists.
	Peers []int32
}

// FullState is the complete resumable state of an accumulator: the State cut
// (sums, collision scalars, bootstrap replicates, generation) plus the node
// directory at the same cut. It is the payload of the durable checkpoint
// frames of internal/wire — restore via RestoreAccumulator or
// RestoreEpochAccumulator and the accumulator continues exactly where the
// exported one stood: identical estimates, identical re-draw validation,
// identical collision accounting, to ≤ 1e-9 of an uninterrupted run (the
// package tests pin bit-equality).
//
// Nodes is sorted by node id — the canonical order that makes
// checkpoint → restore → checkpoint byte-stable.
type FullState struct {
	State *State
	Nodes []NodeRecord
}

// FullExporter is the optional Ingester extension implemented by the live
// accumulators (not by the read-only Pool, which is rebuilt from worker
// exports each round and has nothing durable of its own): ExportFull returns
// the complete resumable state behind durable checkpointing.
type FullExporter interface {
	Ingester
	ExportFull() (*FullState, error)
}

// ExportFull returns the accumulator's complete resumable state: the State
// cut plus the node directory, all describing the same set of applied
// records (one critical section). It is the periodic-checkpoint path — the
// node copies happen under the lock, which Export deliberately avoids; use
// Export when only the mergeable statistics are needed.
func (a *Accumulator) ExportFull() (*FullState, error) {
	repPairs := 0
	if a.reps != nil {
		a.mu.Lock()
		repPairs = a.reps.PairCount()
		a.mu.Unlock()
	}
	sh, err := newStateShell(a.cfg, a.reps != nil, repPairs)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	err = sh.copyFrom(a.sums, a.reps, a.gen.Load(), int64(len(a.nodes)), a.psi1, a.psiInv, a.collisions)
	if err != nil {
		a.mu.Unlock()
		panic(err)
	}
	nodes := make([]NodeRecord, 0, len(a.nodes))
	for id, ns := range a.nodes {
		nodes = append(nodes, NodeRecord{
			Node: id, Cat: ns.cat, Mult: ns.mult, Weight: ns.weight,
			StarSeen: ns.starSeen, Deg: ns.deg,
			NbrCat: append([]int32(nil), ns.nbrCat...),
			NbrCnt: append([]float64(nil), ns.nbrCnt...),
			Peers:  append([]int32(nil), ns.peers...),
		})
	}
	a.mu.Unlock()
	sortNodeRecords(nodes)
	return &FullState{State: sh.st, Nodes: nodes}, nil
}

// ExportFull returns the epoch-merged accumulator's complete resumable
// state. Consistency needs more than the publish mutex here: a flush
// reserves draw intervals in the striped directory (phase 1) before merging
// the epoch's sums (phase 2), so between the phases the directory runs ahead
// of the published view. ExportFull therefore takes the accumulator's
// flush gate exclusively — flushes hold it shared for the phase-1→phase-2
// span — so the cut sees no flush mid-flight and the directory, sums,
// replicates and generation all agree. Records in unflushed Locals are not
// exported (the flush-visibility contract); ingest into Locals is never
// blocked, only flushes wait out the copy.
func (ea *EpochAccumulator) ExportFull() (*FullState, error) {
	ea.flushGate.Lock()
	defer ea.flushGate.Unlock()
	st, err := ea.Export()
	if err != nil {
		return nil, err
	}
	nodes := make([]NodeRecord, 0, st.Distinct)
	for i := range ea.stripes {
		stp := &ea.stripes[i]
		stp.mu.Lock()
		for id, sh := range stp.nodes {
			nodes = append(nodes, NodeRecord{
				Node: id, Cat: sh.cat, Mult: sh.mult, Weight: sh.weight,
				StarSeen: sh.starSeen, Deg: sh.deg,
				NbrCat: append([]int32(nil), sh.nbrCat...),
				NbrCnt: append([]float64(nil), sh.nbrCnt...),
			})
		}
		stp.mu.Unlock()
	}
	sortNodeRecords(nodes)
	return &FullState{State: st, Nodes: nodes}, nil
}

func sortNodeRecords(nodes []NodeRecord) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
}

// validateFull checks a FullState against the configuration it is being
// restored under: identity parameters (partition, scenario, bootstrap
// configuration) must match — estimation-time options (N, size method) are
// free to differ, they are not part of the state.
func validateFull(cfg Config, fs *FullState) error {
	if fs == nil || fs.State == nil || fs.State.Sums == nil {
		return fmt.Errorf("stream: restore: nil state")
	}
	st := fs.State
	if st.K != cfg.K {
		return fmt.Errorf("stream: restore: state covers %d categories, config has %d", st.K, cfg.K)
	}
	if st.Star != cfg.Star {
		return fmt.Errorf("stream: restore: state has star=%v, config has star=%v", st.Star, cfg.Star)
	}
	switch {
	case cfg.Replicates.Enabled() && st.Reps == nil:
		return fmt.Errorf("stream: restore: config wants %d bootstrap replicates but the state carries none", cfg.Replicates.B)
	case cfg.Replicates.Enabled() && st.Reps.Config() != cfg.Replicates:
		return fmt.Errorf("stream: restore: state bootstrap config %+v conflicts with %+v", st.Reps.Config(), cfg.Replicates)
	case !cfg.Replicates.Enabled() && st.Reps != nil:
		return fmt.Errorf("stream: restore: state carries bootstrap replicates but the config runs without them")
	}
	if int64(len(fs.Nodes)) != st.Distinct {
		return fmt.Errorf("stream: restore: %d node records but the state reports %d distinct nodes", len(fs.Nodes), st.Distinct)
	}
	for i := range fs.Nodes {
		nr := &fs.Nodes[i]
		if nr.Cat != graph.None && (nr.Cat < 0 || int(nr.Cat) >= cfg.K) {
			return fmt.Errorf("stream: restore: node %d has category %d outside [0,%d)", nr.Node, nr.Cat, cfg.K)
		}
		if nr.Mult < 1 || math.IsNaN(nr.Mult) || math.IsInf(nr.Mult, 0) {
			return fmt.Errorf("stream: restore: node %d has multiplicity %g", nr.Node, nr.Mult)
		}
		if nr.Weight <= 0 || math.IsNaN(nr.Weight) || math.IsInf(nr.Weight, 0) {
			return fmt.Errorf("stream: restore: node %d has sampling weight %g", nr.Node, nr.Weight)
		}
		if len(nr.NbrCat) != len(nr.NbrCnt) {
			return fmt.Errorf("stream: restore: node %d has %d neighbor categories but %d counts", nr.Node, len(nr.NbrCat), len(nr.NbrCnt))
		}
		if cfg.Star && len(nr.Peers) > 0 {
			return fmt.Errorf("stream: restore: node %d carries induced peers under the star scenario", nr.Node)
		}
		if !cfg.Star && (nr.StarSeen || len(nr.NbrCat) > 0) {
			return fmt.Errorf("stream: restore: node %d carries star data under the induced scenario", nr.Node)
		}
	}
	return nil
}

// RestoreAccumulator builds a single-lock accumulator that resumes exactly
// where the exported one stood: sums, collision scalars, replicates,
// generation and the node directory are all adopted from fs. cfg supplies
// the estimation-time options (N, size method); its identity parameters
// must match the state. The convergence baseline restarts empty — the first
// snapshot after a restore reports +Inf deltas, like a fresh accumulator.
func RestoreAccumulator(cfg Config, fs *FullState) (*Accumulator, error) {
	if err := validateFull(cfg, fs); err != nil {
		return nil, err
	}
	a, err := NewAccumulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := a.sums.CopyFrom(fs.State.Sums); err != nil {
		return nil, err
	}
	if a.reps != nil {
		if err := a.reps.CopyFrom(fs.State.Reps); err != nil {
			return nil, err
		}
	}
	a.psi1, a.psiInv, a.collisions = fs.State.Psi1, fs.State.PsiInv, fs.State.Collisions
	for i := range fs.Nodes {
		nr := &fs.Nodes[i]
		if _, dup := a.nodes[nr.Node]; dup {
			return nil, fmt.Errorf("stream: restore: duplicate node record %d", nr.Node)
		}
		a.nodes[nr.Node] = &nodeState{
			mult: nr.Mult, weight: nr.Weight, cat: nr.Cat,
			starSeen: nr.StarSeen, deg: nr.Deg,
			nbrCat: append([]int32(nil), nr.NbrCat...),
			nbrCnt: append([]float64(nil), nr.NbrCnt...),
			peers:  append([]int32(nil), nr.Peers...),
		}
	}
	a.gen.Store(fs.State.Gen)
	return a, nil
}

// RestoreEpochAccumulator builds an epoch-merged accumulator that resumes
// exactly where the exported one stood (see RestoreAccumulator; the state
// may equally come from a single-lock accumulator's ExportFull — the two
// designs share the same resumable state, only the concurrency machinery
// differs). flushEvery is as in NewEpochAccumulator.
func RestoreEpochAccumulator(cfg Config, flushEvery int, fs *FullState) (*EpochAccumulator, error) {
	if err := validateFull(cfg, fs); err != nil {
		return nil, err
	}
	ea, err := NewEpochAccumulator(cfg, flushEvery)
	if err != nil {
		return nil, err
	}
	if err := ea.sums.CopyFrom(fs.State.Sums); err != nil {
		return nil, err
	}
	if ea.reps != nil {
		if err := ea.reps.CopyFrom(fs.State.Reps); err != nil {
			return nil, err
		}
	}
	ea.psi1, ea.psiInv, ea.collisions = fs.State.Psi1, fs.State.PsiInv, fs.State.Collisions
	for i := range fs.Nodes {
		nr := &fs.Nodes[i]
		stp := ea.stripeFor(nr.Node)
		if _, dup := stp.nodes[nr.Node]; dup {
			return nil, fmt.Errorf("stream: restore: duplicate node record %d", nr.Node)
		}
		stp.nodes[nr.Node] = &sharedNode{
			mult: nr.Mult, weight: nr.Weight, cat: nr.Cat,
			starSeen: nr.StarSeen, deg: nr.Deg,
			nbrCat: append([]int32(nil), nr.NbrCat...),
			nbrCnt: append([]float64(nil), nr.NbrCnt...),
		}
	}
	ea.distinct.Store(int64(len(fs.Nodes)))
	ea.gen.Store(fs.State.Gen)
	return ea, nil
}
