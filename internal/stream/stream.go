// Package stream provides online estimation of the category graph: an
// Accumulator ingests observed nodes one at a time (or in batches) and
// maintains the running Hansen–Hurwitz sums of internal/core so that
// Snapshot produces category sizes, pair weights, within-category densities
// and a population-size estimate in O(K² + pairs) — without ever rescanning
// the ingestion history.
//
// This is the serving-side counterpart of the batch pipeline: the paper's
// estimators are design-based sums over sampled nodes (§4–§5), which makes
// them naturally incremental; a crawler of a live OSN produces exactly the
// stream of sample.NodeObservation records the Accumulator consumes. Batch
// and streaming estimation share one code path (core.Sums), so for identical
// observations Accumulator.Snapshot and core.Estimate agree to within
// floating-point reassociation error (≪ 1e-9 relative; see the package
// tests).
//
// The Accumulator is safe for concurrent use: ingestion and snapshotting
// may race freely across goroutines, and each Snapshot is an immutable
// value once returned. Its throughput, however, is bounded by one mutex;
// for multi-core ingest the EpochAccumulator gives each writer a private
// Local that touches no shared state per record and publishes whole epochs
// of records through a short two-phase merge (core.Sums.Merge /
// uncert.Replicates.Merge) — no locks on the hot path at all, amortized
// O(1) shared work per record, and snapshots identical to the single-lock
// path to ≤ 1e-9. The epoch design is exact for the star scenario, where
// records are per-node self-contained; see NewEpochAccumulator for why
// induced streams stay on the single-lock Accumulator. The architecture
// comment in epoch.go derives the merge's exactness and the
// flush-visibility contract.
package stream

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// Config parameterizes an Accumulator.
type Config struct {
	// K is the number of categories in the partition (required, ≥ 1).
	K int
	// Star selects the measurement scenario: star sampling when true,
	// induced subgraph sampling when false.
	Star bool
	// N is the population size |V|; 0 means unknown, producing relative
	// sizes with N := 1 (§4.3). Snapshots always carry the collision-based
	// N̂ as well, so a long-running service can run with N = 0 and report
	// absolute scale once the stream has accumulated collisions.
	N float64
	// Size selects the category-size estimator plugged into the weights.
	Size core.SizeMethod
	// Replicates turns on the streaming bootstrap (internal/uncert): with
	// B > 0 replicates, every ingest also advances B replicate copies of
	// the sufficient statistics under deterministic per-(node, replicate)
	// Poisson(1) weights, and snapshots carry percentile confidence
	// intervals for every estimand (Snapshot.Boot). Ingest cost grows by
	// O(B · record size); snapshots by O(B·K² + B·pairs). The replicate
	// weights depend only on (Seed, node, replicate), so sharded
	// accumulators with the same configuration produce identical replicate
	// snapshots to the single-lock accumulator.
	Replicates uncert.Config
}

// nodeState is what the accumulator remembers about one distinct node: the
// per-node constants the estimators re-weight on every draw, plus — per
// scenario — the node's star record or its incident observed edges.
type nodeState struct {
	mult   float64
	weight float64
	cat    int32

	// Star scenario: the node's degree and neighbor-category counts,
	// recorded at first observation (as in the batch Observation).
	// starSeen marks that a star-carrying record was recorded — nbrCat
	// alone cannot (a node whose neighbors are all uncategorized records
	// a positive degree with an empty count list).
	starSeen bool
	deg      float64
	nbrCat   []int32
	nbrCnt   []float64

	// Induced scenario: distinct observed peers, so a re-draw can replay
	// its marginal mass over every incident edge of G[S].
	peers []int32
}

// Ingester is the surface shared by the single-lock Accumulator and the
// EpochAccumulator: everything a crawler (or the topoestd daemon) needs to
// feed observations in and read live estimates out. Both implementations are
// safe for concurrent use.
type Ingester interface {
	// Config returns the accumulator's configuration.
	Config() Config
	// Draws returns the number of draws ingested so far.
	Draws() int
	// Distinct returns the number of distinct nodes observed so far.
	Distinct() int
	// Gen returns the monotone ingest generation: a single atomic counter
	// that advances once per successfully applied record (at record apply
	// for the Accumulator, at epoch flush for the EpochAccumulator, whose
	// own Ingest/IngestBatch flush before returning) and can never tear.
	// It is the cache key of choice for snapshot consumers: if a record's
	// Ingest call returned before Gen was read, and a later Gen read
	// returns the same value, then a Snapshot taken between the two reads
	// includes that record.
	Gen() uint64
	// Ingest folds one node observation into the running sums.
	Ingest(rec sample.NodeObservation) error
	// IngestBatch folds a batch in order, stopping at the first invalid
	// record; it returns how many leading records were applied — the retry
	// index for the caller. Only the single-lock Accumulator applies a
	// batch as one isolated critical section; see
	// EpochAccumulator.IngestBatch for what concurrent interleaving does
	// (and does not) change.
	IngestBatch(recs []sample.NodeObservation) (int, error)
	// Snapshot computes the current estimate in O(K² + pairs).
	Snapshot() (*Snapshot, error)
	// Export returns a consistent cut of the accumulator's sufficient
	// statistics — primary sums, collision scalars, bootstrap replicates
	// and the generation identifying the cut — sharing no mutable memory
	// with the accumulator. It is the worker half of the distributed
	// estimation tier: internal/wire serializes a State and a coordinator
	// Pool re-merges states from many processes.
	Export() (*State, error)
}

// Accumulator ingests a stream of node observations and serves estimates.
type Accumulator struct {
	mu    sync.Mutex
	cfg   Config
	sums  *core.Sums
	nodes map[int32]*nodeState

	// reps holds the bootstrap replicate sums (nil when Config.Replicates
	// is off); every mutation of sums has a mirrored call on reps.
	reps *uncert.Replicates

	// Collision statistics for the §4.3 population-size estimator.
	psi1, psiInv, collisions float64

	// Convergence tracking: the previous snapshot's estimate.
	lastSizes []float64
	lastW     *core.PairWeights
	lastDraws float64
	seq       int64

	// gen advances once per successfully applied record, inside the
	// critical section, so an Ingest call that returned has published its
	// increment (see Ingester.Gen).
	gen atomic.Uint64
}

// NewAccumulator returns an empty accumulator for the given configuration.
func NewAccumulator(cfg Config) (*Accumulator, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: config needs K ≥ 1 categories, got %d", cfg.K)
	}
	if cfg.Replicates.B < 0 {
		return nil, fmt.Errorf("stream: config needs ≥ 0 bootstrap replicates, got %d", cfg.Replicates.B)
	}
	a := &Accumulator{
		cfg:   cfg,
		sums:  core.NewSums(cfg.K, cfg.Star),
		nodes: make(map[int32]*nodeState),
	}
	if cfg.Replicates.Enabled() {
		reps, err := uncert.NewReplicates(cfg.K, cfg.Star, cfg.Replicates)
		if err != nil {
			return nil, err
		}
		a.reps = reps
	}
	return a, nil
}

// Config returns the accumulator's configuration.
func (a *Accumulator) Config() Config { return a.cfg }

// Draws returns the number of draws ingested so far.
func (a *Accumulator) Draws() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.sums.Draws)
}

// Distinct returns the number of distinct nodes observed so far.
func (a *Accumulator) Distinct() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.nodes)
}

// Gen implements Ingester: the monotone ingest generation, readable without
// the accumulator lock.
func (a *Accumulator) Gen() uint64 { return a.gen.Load() }

// SumsClone returns a deep copy of the primary sufficient statistics at a
// consistent cut — the raw material of cross-accumulator engines such as
// the between-walk replication variance of internal/uncert, which pools
// one accumulator per walk.
func (a *Accumulator) SumsClone() *core.Sums {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := core.NewSums(a.cfg.K, a.cfg.Star)
	// Merging into a fresh sums of the same K and scenario cannot fail.
	if err := s.Merge(a.sums); err != nil {
		panic(err)
	}
	return s
}

// Ingest folds one node observation into the running sums in O(1 +
// |record|) — where |record| is the number of neighbor categories (star) or
// incident observed edges (induced re-draw). The record conventions are
// those of sample.NodeObservation: weight 0 means 1, star neighbor data
// rides on the first observation of a node, induced peers list each edge of
// G[S] exactly once. Records that fail validation are rejected without
// changing any state.
func (a *Accumulator) Ingest(rec sample.NodeObservation) error {
	// Instrumentation cost on the hot path: one striped atomic add for an
	// applied record. The latency histogram is only taken when bootstrap
	// replicates are enabled, where the O(B) replicate update already puts
	// the record in microsecond territory and two clock reads are noise.
	var t0 time.Time
	if a.reps != nil {
		t0 = time.Now()
	}
	a.mu.Lock()
	err := a.ingestLocked(rec)
	a.mu.Unlock()
	if err != nil {
		return err
	}
	mIngested.Inc()
	if a.reps != nil {
		mBootIngestSec.ObserveSince(t0)
	}
	return nil
}

// IngestBatch folds a batch of observations in one critical section,
// stopping at the first invalid record (previous records stay applied). It
// returns the number of records applied. The count is the retry contract:
// on error exactly the first n records are durable, so a retrying client
// must resend recs[n:] after fixing the offending record recs[n] (or
// recs[n+1:] after discarding it) — resending the whole batch
// double-ingests the prefix.
func (a *Accumulator) IngestBatch(recs []sample.NodeObservation) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, rec := range recs {
		if err := a.ingestLocked(rec); err != nil {
			mIngested.Add(int64(i))
			return i, err
		}
	}
	mIngested.Add(int64(len(recs)))
	return len(recs), nil
}

func (a *Accumulator) ingestLocked(rec sample.NodeObservation) error {
	if rec.Cat != graph.None && (rec.Cat < 0 || int(rec.Cat) >= a.cfg.K) {
		return reject("bad_category", "stream: node %d has category %d outside [0,%d)", rec.Node, rec.Cat, a.cfg.K)
	}
	// Only weight 0 means "unspecified, i.e. 1"; a negative, NaN, or
	// infinite weight is a broken crawler, and silently folding it in would
	// corrupt every Hansen–Hurwitz sum the node touches.
	if math.IsNaN(rec.Weight) || math.IsInf(rec.Weight, 0) || rec.Weight < 0 {
		return reject("bad_weight", "stream: node %d has invalid sampling weight %g (0 means 1; negative, NaN and infinite are rejected)", rec.Node, rec.Weight)
	}
	// Records carrying fields of the other scenario signal a mismatched
	// stream — reject loudly rather than silently ignore the data and
	// serve garbage estimates.
	if !a.cfg.Star && (len(rec.NbrCat) > 0 || len(rec.NbrCnt) > 0 || rec.Deg != 0) {
		return reject("scenario_mismatch", "stream: node %d carries star fields (deg/nbr_cat) but the accumulator runs the induced scenario", rec.Node)
	}
	if a.cfg.Star && len(rec.Peers) > 0 {
		return reject("scenario_mismatch", "stream: node %d carries induced peers but the accumulator runs the star scenario", rec.Node)
	}
	w := rec.Weight
	if w == 0 {
		w = 1
	}
	ns, known := a.nodes[rec.Node]
	if !known {
		ns = &nodeState{weight: w, cat: rec.Cat}
	} else {
		// A node's category and sampling weight are per-node constants of
		// the design; a re-draw that contradicts the first observation is a
		// buggy or misrouted crawler and would silently skew every estimate
		// if we kept folding it in under the old metadata. An omitted weight
		// (0) on a re-draw inherits the recorded one — crawlers may send the
		// weight only on a node's first record.
		if rec.Cat != ns.cat {
			return reject("redraw_conflict", "stream: node %d re-drawn with category %d, conflicting with its first observation (category %d)", rec.Node, rec.Cat, ns.cat)
		}
		if rec.Weight != 0 && w != ns.weight {
			return reject("redraw_conflict", "stream: node %d re-drawn with sampling weight %g, conflicting with its first observation (weight %g)", rec.Node, w, ns.weight)
		}
	}
	// Star info is recorded once per distinct node, from the first record
	// that carries it. Well-formed streams send it with the node's first
	// observation (StreamObserver does); when several crawlers feed one
	// accumulator concurrently, sending it on every record is equally
	// correct — whichever arrives first is kept, matching the batch
	// Observation's once-per-node semantics on a static graph. Should the
	// info only arrive on a later draw, the node's earlier draws — which
	// contributed exactly zero star mass (deg 0, no neighbors) — are
	// backfilled below, so the estimate matches the batch path regardless
	// of delivery order.
	if a.cfg.Star && (len(rec.NbrCat) > 0 || len(rec.NbrCnt) > 0 || rec.Deg != 0) {
		if err := sample.ValidateStarFields(a.cfg.K, rec); err != nil {
			return reject("bad_star", "stream: %w", err)
		}
		if ns.starSeen {
			// Star info arriving again for a node whose star data is
			// already recorded must reconcile with it: consistent
			// re-deliveries pass (concurrent crawlers, in whatever category
			// order and degree convention each one emits), partial ones
			// upgrade the record, and a contradiction is a buggy crawler
			// whose data must not be dropped silently.
			cat, cnt := sample.CanonicalStarCounts(rec.NbrCat, rec.NbrCnt)
			newDeg, newCat, newCnt, err := sample.ReconcileStarData(rec.Node, rec.Deg, cat, cnt, ns.deg, ns.nbrCat, ns.nbrCnt)
			if err != nil {
				return reject("star_conflict", "stream: %w", err)
			}
			if newDeg != ns.deg || len(newCat) != len(ns.nbrCat) {
				// Retrofit the node's earlier draws with the upgraded
				// information: the degree delta, plus the adopted counts
				// when the stored list was empty.
				var addCat []int32
				var addCnt []float64
				if len(newCat) != len(ns.nbrCat) {
					addCat, addCnt = newCat, newCnt
				}
				a.sums.AddStar(ns.cat, ns.weight, ns.mult, newDeg-ns.deg, addCat, addCnt)
				if a.reps != nil {
					a.reps.AddStar(rec.Node, ns.cat, ns.weight, ns.mult, newDeg-ns.deg, addCat, addCnt)
				}
				ns.deg = newDeg
				ns.nbrCat = append([]int32(nil), newCat...)
				ns.nbrCnt = append([]float64(nil), newCnt...)
			}
		} else {
			a.recordStarLocked(rec, ns)
		}
	}
	// Validate induced peers before mutating anything.
	var newPeers []int32
	if !a.cfg.Star && len(rec.Peers) > 0 {
		for _, p := range rec.Peers {
			if _, ok := a.nodes[p]; !ok && p != rec.Node {
				return reject("unknown_peer", "stream: peer %d of node %d not yet observed", p, rec.Node)
			}
			// Skip self-loops, already-known edges, and duplicates within
			// this record's own peer list.
			if p == rec.Node || a.hasEdge(ns, p) || contains(newPeers, p) {
				continue
			}
			newPeers = append(newPeers, p)
		}
	}

	if !known {
		a.nodes[rec.Node] = ns
	}
	prev := ns.mult
	ns.mult++
	a.sums.AddNode(ns.cat, ns.weight, 1, prev)
	a.psi1 += ns.weight
	a.psiInv += 1 / ns.weight
	a.collisions += prev // the new draw collides with every earlier draw of this node
	if a.reps != nil {
		a.reps.AddDraw(rec.Node, ns.cat, ns.weight, prev)
	}

	if a.cfg.Star {
		a.sums.AddStar(ns.cat, ns.weight, 1, ns.deg, ns.nbrCat, ns.nbrCnt)
		if a.reps != nil {
			a.reps.AddStar(rec.Node, ns.cat, ns.weight, 1, ns.deg, ns.nbrCat, ns.nbrCnt)
		}
		a.gen.Add(1)
		return nil
	}
	// Induced: a re-draw raises this node's multiplicity, which raises the
	// mass of every incident observed edge by m_peer/(w·w_peer)…
	if prev > 0 {
		for _, p := range ns.peers {
			ps := a.nodes[p]
			mass := ps.mult / (ns.weight * ps.weight)
			a.sums.AddEdgeMass(ns.cat, ps.cat, mass)
			if a.reps != nil {
				a.reps.AddEdgeMass(rec.Node, p, ns.cat, ps.cat, mass)
			}
		}
	}
	// …and newly visible edges contribute their full product mass.
	for _, p := range newPeers {
		ps := a.nodes[p]
		ns.peers = append(ns.peers, p)
		ps.peers = append(ps.peers, rec.Node)
		mass := ns.mult * ps.mult / (ns.weight * ps.weight)
		a.sums.AddEdgeMass(ns.cat, ps.cat, mass)
		if a.reps != nil {
			a.reps.AddEdgeMass(rec.Node, p, ns.cat, ps.cat, mass)
		}
	}
	a.gen.Add(1)
	return nil
}

// recordStarLocked records a node's star data from the first record that
// carries any (the caller has already validated the fields), backfilling
// the star mass of the node's earlier draws — which contributed exactly
// zero (deg 0, no neighbors) — so the estimate matches the batch path
// regardless of delivery order.
func (a *Accumulator) recordStarLocked(rec sample.NodeObservation, ns *nodeState) {
	cat, cnt := sample.CanonicalStarCounts(rec.NbrCat, rec.NbrCnt)
	ns.deg = sample.EffectiveStarDegree(rec.Deg, cnt)
	ns.starSeen = true
	ns.nbrCat = append([]int32(nil), cat...)
	ns.nbrCnt = append([]float64(nil), cnt...)
	if ns.mult > 0 {
		// Backfill the star mass of the node's earlier draws.
		a.sums.AddStar(ns.cat, ns.weight, ns.mult, ns.deg, ns.nbrCat, ns.nbrCnt)
		if a.reps != nil {
			a.reps.AddStar(rec.Node, ns.cat, ns.weight, ns.mult, ns.deg, ns.nbrCat, ns.nbrCnt)
		}
	}
}

// hasEdge reports whether the edge {ns, p} is already recorded. Incident
// lists are scanned linearly: category-graph workloads observe bounded
// degrees within G[S], and the scan avoids a second hash structure.
func (a *Accumulator) hasEdge(ns *nodeState, p int32) bool {
	return contains(ns.peers, p)
}

func contains(xs []int32, x int32) bool {
	for _, q := range xs {
		if q == x {
			return true
		}
	}
	return false
}

// Convergence quantifies how much the estimate moved between consecutive
// snapshots — the stopping signal of a live crawl (§6's sample-size sweeps
// ask exactly this question offline).
type Convergence struct {
	// DrawsSince is the number of draws ingested since the previous
	// snapshot (equal to Draws on the first snapshot).
	DrawsSince int
	// SizeDelta is max_A |Δ|Â|| / N, the largest relative category-size
	// movement; +Inf on the first snapshot.
	SizeDelta float64
	// WeightDelta is max_{A,B} |Δŵ(A,B)| over pairs finite in both
	// snapshots; +Inf on the first snapshot.
	WeightDelta float64
}

// Snapshot is a self-contained estimate of the category graph at one point
// in the stream. It shares no mutable state with the accumulator.
type Snapshot struct {
	// Seq numbers the snapshots of one accumulator from 1.
	Seq int64
	// Draws and Distinct describe the sample consumed so far.
	Draws    int
	Distinct int
	// Result is the full category-graph estimate (sizes, weights, method).
	Result *core.Result
	// Within holds the within-category density estimates ŵ(A,A).
	Within []float64
	// PopEstimate is the §4.3 collision estimate of |V| (+Inf until the
	// stream has seen a collision).
	PopEstimate float64
	// Converge compares this snapshot with the previous one.
	Converge Convergence
	// Boot holds the bootstrap replicate estimates of every estimand — the
	// raw material of percentile confidence intervals at any level (e.g.
	// Boot.SizeCI(c, 0.95)). Nil unless Config.Replicates is on.
	Boot *uncert.BootSnapshot
}

// Sizes returns the estimated category sizes (convenience accessor).
func (s *Snapshot) Sizes() []float64 { return s.Result.Sizes }

// Weights returns the estimated pair weights (convenience accessor).
func (s *Snapshot) Weights() *core.PairWeights { return s.Result.Weights }

// Snapshot computes the current estimate from the running sums in
// O(K² + pairs) and advances the convergence baseline. It fails on an empty
// accumulator and propagates estimator errors (e.g. a star size method on an
// induced stream).
func (a *Accumulator) Snapshot() (*Snapshot, error) {
	defer mSnapshotSec.ObserveSince(time.Now())
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sums.Draws == 0 {
		return nil, fmt.Errorf("stream: empty accumulator")
	}
	res, err := a.sums.Estimate(core.Options{N: a.cfg.N, Size: a.cfg.Size})
	if err != nil {
		return nil, err
	}
	var within []float64
	if a.cfg.Star {
		within, err = a.sums.WithinWeightsStar(res.Sizes)
	} else {
		within, err = a.sums.WithinWeightsInduced()
	}
	if err != nil {
		return nil, err
	}
	a.seq++
	snap := &Snapshot{
		Seq:         a.seq,
		Draws:       int(a.sums.Draws),
		Distinct:    len(a.nodes),
		Result:      res,
		Within:      within,
		PopEstimate: core.PopulationSizeFromSums(a.sums.Draws, a.psi1, a.psiInv, a.collisions),
		Converge:    a.convergeLocked(res),
	}
	if a.reps != nil {
		snap.Boot = a.reps.Snapshot(core.Options{N: a.cfg.N, Size: a.cfg.Size})
	}
	a.lastSizes = append([]float64(nil), res.Sizes...)
	a.lastW = res.Weights
	a.lastDraws = a.sums.Draws
	return snap, nil
}

// convergeLocked measures the estimate movement since the last snapshot.
func (a *Accumulator) convergeLocked(res *core.Result) Convergence {
	return convergeFrom(res, a.lastSizes, a.lastW, int(a.sums.Draws-a.lastDraws))
}

// convergeFrom compares an estimate against the previous snapshot's sizes
// and weights (nil on the first snapshot). It is shared by the single-lock
// and sharded accumulators.
func convergeFrom(res *core.Result, lastSizes []float64, lastW *core.PairWeights, drawsSince int) Convergence {
	c := Convergence{DrawsSince: drawsSince}
	if lastSizes == nil {
		c.SizeDelta = math.Inf(1)
		c.WeightDelta = math.Inf(1)
		return c
	}
	for i, s := range res.Sizes {
		if d := math.Abs(s-lastSizes[i]) / res.N; d > c.SizeDelta {
			c.SizeDelta = d
		}
	}
	// The pair set only grows, so iterating the new weights covers the
	// union; pairs NaN in either snapshot are skipped.
	res.Weights.ForEach(func(x, y int32, w float64) {
		old := lastW.Get(x, y)
		if math.IsNaN(w) || math.IsNaN(old) {
			return
		}
		if d := math.Abs(w - old); d > c.WeightDelta {
			c.WeightDelta = d
		}
	})
	return c
}
