package stream

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// bootMaxDiff returns the largest relative difference between two replicate
// grids (per estimand, per replicate), treating NaN = NaN as equal.
func bootMaxDiff(a, b [][]float64) float64 {
	var m float64
	for c := range a {
		if d := maxRelDiff(a[c], b[c]); d > m {
			m = d
		}
	}
	return m
}

// TestStreamingBootstrapMatchesOffline pins the streaming replicate path to
// the offline one: ingesting a star stream record by record must produce,
// replicate for replicate, the same estimates as rebuilding the replicate
// sums from the equivalent batch observation (identical Poisson weights,
// different accumulation order → ≤ 1e-9 relative difference).
func TestStreamingBootstrapMatchesOffline(t *testing.T) {
	for _, star := range []bool{true, false} {
		g := testGraph(t)
		s, err := sample.NewRW(100).Sample(randx.New(61), g, 3000)
		if err != nil {
			t.Fatal(err)
		}
		so, err := sample.NewStreamObserver(g, star)
		if err != nil {
			t.Fatal(err)
		}
		bc := uncert.Config{B: 25, Seed: 5}
		acc, err := NewAccumulator(Config{
			K: g.NumCategories(), Star: star, N: float64(g.N()), Replicates: bc,
		})
		if err != nil {
			t.Fatal(err)
		}
		obs := so.NewObservation()
		for i, v := range s.Nodes {
			rec := so.Observe(v, s.Weight(i))
			if err := acc.Ingest(rec); err != nil {
				t.Fatal(err)
			}
			if err := obs.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := acc.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Boot == nil || snap.Boot.B != bc.B {
			t.Fatalf("star=%v: snapshot carries no bootstrap (%+v)", star, snap.Boot)
		}
		offReps, err := uncert.ReplicatesFromObservation(obs, bc)
		if err != nil {
			t.Fatal(err)
		}
		off := offReps.Snapshot(core.Options{N: float64(g.N())})
		if d := bootMaxDiff(snap.Boot.Sizes, off.Sizes); d > 1e-9 {
			t.Fatalf("star=%v: replicate sizes differ by %g", star, d)
		}
		if d := bootMaxDiff(snap.Boot.Within, off.Within); d > 1e-9 {
			t.Fatalf("star=%v: replicate within differ by %g", star, d)
		}
		if d := maxRelDiff(snap.Boot.Pop, off.Pop); d > 1e-9 {
			t.Fatalf("star=%v: replicate pop estimates differ by %g", star, d)
		}
		for c := 0; c < g.NumCategories(); c++ {
			a, b := snap.Boot.SizeCI(c, 0.95), off.SizeCI(c, 0.95)
			if math.Abs(a.Lo-b.Lo) > 1e-6 || math.Abs(a.Hi-b.Hi) > 1e-6 {
				t.Fatalf("star=%v: CI mismatch for category %d: %+v vs %+v", star, c, a, b)
			}
		}
	}
}

// TestEpochBootstrapMatchesSingle is the acceptance test of the epoch
// replicate path: concurrent ingestion through writer-local epochs (mixed
// with the compatibility Ingest path) must produce replicate snapshots
// identical (≤ 1e-9) to the single-lock accumulator fed the same records.
// The replicate weights depend only on (Seed, node, replicate), and the
// epoch merge batches each node's replicate update from its reserved
// multiplicity interval, so the telescoped sums match the per-record path
// exactly. Run under -race.
func TestEpochBootstrapMatchesSingle(t *testing.T) {
	g := testGraph(t)
	N := float64(g.N())
	s, err := sample.UIS{}.Sample(randx.New(91), g, 6000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]sample.NodeObservation, s.Len())
	for i, v := range s.Nodes {
		recs[i] = so.Observe(v, s.Weight(i))
	}
	cfg := Config{
		K: g.NumCategories(), Star: true, N: N,
		Replicates: uncert.Config{B: 20, Seed: 3},
	}
	single, err := NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	epoch, err := NewEpochAccumulator(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Writer-local epochs with small flushes: replicate grids
				// merge while other locals ingest.
				l := epoch.NewLocal()
				defer l.Close()
				for i := w; i < len(recs); i += workers {
					if err := l.Ingest(recs[i]); err != nil {
						t.Error(err)
						return
					}
					if l.Pending() >= 50 {
						if _, dropped := l.Flush(); dropped > 0 {
							t.Errorf("flush dropped %d records of a conflict-free stream", dropped)
							return
						}
					}
				}
				return
			}
			for i := w; i < len(recs); i += workers {
				if err := epoch.Ingest(recs[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Snapshot concurrently with ingestion — replicate snapshots must stay
	// internally consistent cuts (this is the -race exercise).
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap, err := epoch.Snapshot(); err == nil && snap.Boot == nil {
				t.Error("mid-stream snapshot lost its bootstrap")
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		return
	}
	want, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := epoch.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := bootMaxDiff(got.Boot.Sizes, want.Boot.Sizes); d > 1e-9 {
		t.Fatalf("epoch replicate sizes differ by %g", d)
	}
	if d := bootMaxDiff(got.Boot.Within, want.Boot.Within); d > 1e-9 {
		t.Fatalf("epoch replicate within differ by %g", d)
	}
	if d := maxRelDiff(got.Boot.Pop, want.Boot.Pop); d > 1e-9 {
		t.Fatalf("epoch replicate pop estimates differ by %g", d)
	}
	for c := 0; c < g.NumCategories(); c++ {
		a, b := got.Boot.SizeCI(c, 0.9), want.Boot.SizeCI(c, 0.9)
		if math.Abs(a.Lo-b.Lo) > 1e-6 || math.Abs(a.Hi-b.Hi) > 1e-6 {
			t.Fatalf("category %d: epoch CI %+v vs single %+v", c, a, b)
		}
	}
}

// TestBootstrapOffByDefault checks that accumulators without a Replicates
// config behave exactly as before: no Boot on snapshots, no extra work.
func TestBootstrapOffByDefault(t *testing.T) {
	g := testGraph(t)
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true})
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Ingest(so.Observe(0, 1)); err != nil {
		t.Fatal(err)
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Boot != nil {
		t.Fatal("bootstrap must be off by default")
	}
	if _, err := NewAccumulator(Config{K: 2, Star: true, Replicates: uncert.Config{B: -1}}); err == nil {
		t.Fatal("negative replicate count must be rejected")
	}
}

// TestBootstrapLateStarBackfill checks that star data arriving only on a
// later draw of a node is backfilled into the replicate sums exactly as into
// the primary sums: the final replicate estimates must match a stream that
// carried the star data upfront.
func TestBootstrapLateStarBackfill(t *testing.T) {
	cfg := Config{K: 2, Star: true, N: 10, Replicates: uncert.Config{B: 16, Seed: 9}}
	early, err := NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late, err := NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := sample.NodeObservation{Node: 4, Cat: 0, Deg: 3, NbrCat: []int32{0, 1}, NbrCnt: []float64{1, 2}}
	bare := sample.NodeObservation{Node: 4, Cat: 0}
	other := sample.NodeObservation{Node: 9, Cat: 1, Deg: 1, NbrCat: []int32{0}, NbrCnt: []float64{1}}
	// Early: star data on the first draw. Late: two bare draws first.
	for _, rec := range []sample.NodeObservation{full, bare, bare, other} {
		if err := early.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range []sample.NodeObservation{bare, bare, full, other} {
		if err := late.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	a, err := early.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := late.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := bootMaxDiff(a.Boot.Sizes, b.Boot.Sizes); d > 1e-12 {
		t.Fatalf("late star backfill: replicate sizes differ by %g", d)
	}
	if d := bootMaxDiff(a.Boot.Within, b.Boot.Within); d > 1e-12 {
		t.Fatalf("late star backfill: replicate within differ by %g", d)
	}
}
