package stream

import (
	"math"
	"sync"
	"testing"

	"repro/internal/randx"
	"repro/internal/sample"
)

// TestEpochRequiresStar checks the constructor guards.
func TestEpochRequiresStar(t *testing.T) {
	if _, err := NewEpochAccumulator(Config{K: 3, Star: false}, 0); err == nil {
		t.Fatal("expected error for induced epoch accumulator")
	}
	if _, err := NewEpochAccumulator(Config{K: 3, Star: true}, -1); err == nil {
		t.Fatal("expected error for negative flushEvery")
	}
	if _, err := NewEpochAccumulator(Config{K: 0, Star: true}, 0); err == nil {
		t.Fatal("expected error for K = 0")
	}
	ea, err := NewEpochAccumulator(Config{K: 3, Star: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.Snapshot(); err == nil {
		t.Fatal("expected error snapshotting an empty epoch accumulator")
	}
}

// TestEpochMatchesSingleConcurrent is the tentpole property test: many
// goroutines ingest interleaved shards of a star stream into one
// EpochAccumulator — half through writer-owned Locals with periodic
// flushes, half through the compatibility Ingest/IngestBatch path — while
// snapshotters poll; the final estimate, draw/distinct counts, and
// population estimate must match the single-lock accumulator fed the same
// records. Run under -race.
func TestEpochMatchesSingleConcurrent(t *testing.T) {
	g := testGraph(t)
	N := float64(g.N())
	s, err := sample.UIS{}.Sample(randx.New(77), g, 8000)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]sample.NodeObservation, s.Len())
	for i, v := range s.Nodes {
		so, err := sample.NewStreamObserver(g, true)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = so.Observe(v, s.Weight(i))
	}
	single, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: N})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	ea, err := NewEpochAccumulator(Config{K: g.NumCategories(), Star: true, N: N}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Writer-local epochs, flushed every 100 records and at
				// the end (Close).
				l := ea.NewLocal()
				defer l.Close()
				for i := w; i < len(recs); i += workers {
					if err := l.Ingest(recs[i]); err != nil {
						t.Error(err)
						return
					}
					if l.Pending() >= 100 {
						if _, dropped := l.Flush(); dropped > 0 {
							t.Errorf("flush dropped %d records of a conflict-free stream", dropped)
							return
						}
					}
				}
				return
			}
			var batch []sample.NodeObservation
			for i := w; i < len(recs); i += workers {
				if i%7 == 0 {
					if err := ea.Ingest(recs[i]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				batch = append(batch, recs[i])
				if len(batch) == 25 {
					if _, err := ea.IngestBatch(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := ea.IngestBatch(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap, err := ea.Snapshot(); err == nil {
				if snap.Draws > len(recs) {
					t.Errorf("snapshot draws %d exceeds stream length", snap.Draws)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		return
	}
	if ea.Draws() != single.Draws() || ea.Distinct() != single.Distinct() {
		t.Fatalf("epoch draws/distinct = %d/%d, single = %d/%d",
			ea.Draws(), ea.Distinct(), single.Draws(), single.Distinct())
	}
	want, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ea.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > 1e-9 {
		t.Fatalf("epoch size mismatch: %g", d)
	}
	if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > 1e-9 {
		t.Fatalf("epoch weight mismatch: %g", d)
	}
	if d := maxRelDiff(got.Within, want.Within); d > 1e-9 {
		t.Fatalf("epoch within mismatch: %g", d)
	}
	if d := math.Abs(got.PopEstimate-want.PopEstimate) / want.PopEstimate; d > 1e-9 {
		t.Fatalf("epoch pop estimate %g, single %g", got.PopEstimate, want.PopEstimate)
	}
}

// TestEpochBatchPrefixSemantics checks that the epoch IngestBatch keeps the
// single-lock accumulator's retry contract: on error, exactly the leading
// records before the offender are applied (one epoch, flushed on exit).
func TestEpochBatchPrefixSemantics(t *testing.T) {
	ea, err := NewEpochAccumulator(Config{K: 2, Star: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []sample.NodeObservation{
		{Node: 10, Cat: 0, Deg: 1, NbrCat: []int32{1}, NbrCnt: []float64{1}},
		{Node: 11, Cat: 1, Deg: 1, NbrCat: []int32{0}, NbrCnt: []float64{1}},
		{Node: 12, Cat: 9}, // invalid category
		{Node: 13, Cat: 0},
	}
	n, err := ea.IngestBatch(recs)
	if err == nil {
		t.Fatal("expected error on invalid record")
	}
	if n != 2 {
		t.Fatalf("applied %d records, want the 2-record prefix", n)
	}
	if ea.Draws() != 2 {
		t.Fatalf("draws = %d after failed batch, want 2", ea.Draws())
	}
	// The documented retry: resend only the remainder with the offender
	// fixed.
	recs[2].Cat = 1
	if _, err := ea.IngestBatch(recs[2:]); err != nil {
		t.Fatal(err)
	}
	if ea.Draws() != 4 {
		t.Fatalf("draws = %d after retry, want 4", ea.Draws())
	}
}

// TestEpochConvergenceAndSeq checks that epoch snapshots number from 1,
// start at +Inf deltas, and then report finite movement.
func TestEpochConvergenceAndSeq(t *testing.T) {
	g := testGraph(t)
	s, err := sample.UIS{}.Sample(randx.New(5), g, 4000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEpochAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes[:2000] {
		if err := ea.Ingest(so.Observe(v, s.Weight(i))); err != nil {
			t.Fatal(err)
		}
	}
	first, err := ea.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || !math.IsInf(first.Converge.SizeDelta, 1) || first.Converge.DrawsSince != 2000 {
		t.Fatalf("first epoch snapshot: %+v", first.Converge)
	}
	for i, v := range s.Nodes[2000:] {
		if err := ea.Ingest(so.Observe(v, s.Weight(2000+i))); err != nil {
			t.Fatal(err)
		}
	}
	second, err := ea.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 2 || second.Converge.DrawsSince != 2000 {
		t.Fatalf("second epoch snapshot: seq=%d %+v", second.Seq, second.Converge)
	}
	if math.IsInf(second.Converge.SizeDelta, 1) || second.Converge.SizeDelta < 0 {
		t.Fatalf("second snapshot delta not finite: %+v", second.Converge)
	}
}

// TestEpochLocalMatchesAccumulator pins the sequential one-writer case to
// the single-lock accumulator: one Local with a small auto-flush threshold
// (so the stream spans many epochs, exercising re-draws across epoch
// boundaries) must reproduce the single-lock estimate to float-rounding.
func TestEpochLocalMatchesAccumulator(t *testing.T) {
	g := testGraph(t)
	s, err := sample.NewRW(50).Sample(randx.New(8), g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEpochAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())}, 64)
	if err != nil {
		t.Fatal(err)
	}
	l := ea.NewLocal()
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes {
		rec := so.Observe(v, s.Weight(i))
		if err := l.Ingest(rec); err != nil {
			t.Fatal(err)
		}
		if err := acc.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if applied, dropped := l.Close(); dropped > 0 {
		t.Fatalf("final flush dropped %d records (applied %d)", dropped, applied)
	}
	if ea.Draws() != acc.Draws() || ea.Distinct() != acc.Distinct() {
		t.Fatalf("epoch draws/distinct = %d/%d, single = %d/%d",
			ea.Draws(), ea.Distinct(), acc.Draws(), acc.Distinct())
	}
	got, err := ea.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > 1e-9 {
		t.Fatalf("local size mismatch: %g", d)
	}
	if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > 1e-9 {
		t.Fatalf("local weight mismatch: %g", d)
	}
	if d := math.Abs(got.PopEstimate-want.PopEstimate) / want.PopEstimate; d > 1e-9 {
		t.Fatalf("local pop estimate %g, single %g", got.PopEstimate, want.PopEstimate)
	}
}

// TestEpochBatchCountExactUnderConcurrency pins the documented concurrent
// IngestBatch guarantee for locally detectable conflicts: every conflicting
// batch carries its offending re-delivery AFTER a consistent record of the
// same node in the same batch, so the conflict is caught at ingest (against
// the epoch's own state), each caller gets an exact prefix count, and the
// total draw count equals the sum of the returned counts. Run under -race.
func TestEpochBatchCountExactUnderConcurrency(t *testing.T) {
	ea, err := NewEpochAccumulator(Config{K: 2, Star: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every batch re-draws a shared node set, and half the batches carry a
	// conflicting re-delivery of node 7: the weight-1 record of node 7
	// precedes any weight-3 record in batch order, so each conflicting
	// batch deterministically stops at its conflicting index.
	const callers = 8
	batches := make([][]sample.NodeObservation, callers)
	for c := range batches {
		w := 1.0
		for v := int32(0); v < 40; v++ {
			rec := sample.NodeObservation{
				Node: v, Weight: w, Cat: v % 2,
				Deg: 2, NbrCat: []int32{(v + 1) % 2}, NbrCnt: []float64{2},
			}
			batches[c] = append(batches[c], rec)
		}
		if c%2 == 1 {
			batches[c][20] = sample.NodeObservation{
				Node: 7, Weight: 3, Cat: 1,
				Deg: 2, NbrCat: []int32{0}, NbrCnt: []float64{2},
			}
		}
	}
	counts := make([]int, callers)
	var wg sync.WaitGroup
	for c := range batches {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n, _ := ea.IngestBatch(batches[c])
			counts[c] = n
		}(c)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	if ea.Draws() != total {
		t.Fatalf("Draws() = %d, want the sum of returned batch counts %d", ea.Draws(), total)
	}
	if uint64(total) != ea.Gen() {
		t.Fatalf("Gen() = %d, want %d", ea.Gen(), total)
	}
	// Every conflicting batch must have stopped at its offender.
	if total == callers*40 {
		t.Fatal("no batch reported a conflict; the test graph is miswired")
	}
	// The accumulator still snapshots cleanly from the applied records.
	if _, err := ea.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestGenMonotoneNonTorn checks the Gen/Draws contract on both
// accumulators: the generation advances once per applied record (per
// applied epoch record, for the epoch accumulator's auto-flushing Ingest),
// rejected records leave it unchanged, and concurrent readers only ever
// observe non-decreasing values. Run under -race.
func TestGenMonotoneNonTorn(t *testing.T) {
	single, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := NewEpochAccumulator(Config{K: 2, Star: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, acc := range map[string]Ingester{"single": single, "epoch": epoch} {
		if acc.Gen() != 0 {
			t.Fatalf("%s: fresh Gen() = %d", name, acc.Gen())
		}
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					g := acc.Gen()
					if g < last {
						t.Errorf("%s: Gen went backwards: %d after %d", name, g, last)
						return
					}
					last = g
				}
			}()
		}
		var writers sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for v := int32(w * 100); v < int32(w*100+50); v++ {
					rec := sample.NodeObservation{Node: v, Cat: v % 2, Deg: 1, NbrCat: []int32{0}, NbrCnt: []float64{1}}
					if err := acc.Ingest(rec); err != nil {
						t.Errorf("%s: ingest: %v", name, err)
						return
					}
				}
			}(w)
		}
		writers.Wait()
		close(stop)
		readers.Wait()
		if acc.Gen() != 200 || acc.Draws() != 200 {
			t.Fatalf("%s: Gen=%d Draws=%d, want 200 each", name, acc.Gen(), acc.Draws())
		}
		// A rejected record must not advance the generation.
		if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 9}); err == nil {
			t.Fatalf("%s: invalid record accepted", name)
		}
		if acc.Gen() != 200 {
			t.Fatalf("%s: rejected record advanced Gen to %d", name, acc.Gen())
		}
	}
}

// TestEpochFlushZeroPending checks the flush-boundary edge cases around
// empty epochs: flushing a fresh Local, double-flushing, and closing an
// already-flushed Local are all cheap no-ops that do not advance Gen.
func TestEpochFlushZeroPending(t *testing.T) {
	ea, err := NewEpochAccumulator(Config{K: 2, Star: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := ea.NewLocal()
	if a, d := l.Flush(); a != 0 || d != 0 {
		t.Fatalf("empty flush applied/dropped = %d/%d", a, d)
	}
	if ea.Gen() != 0 {
		t.Fatalf("empty flush advanced Gen to %d", ea.Gen())
	}
	rec := sample.NodeObservation{Node: 1, Cat: 0, Deg: 1, NbrCat: []int32{1}, NbrCnt: []float64{1}}
	if err := l.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", l.Pending())
	}
	if a, d := l.Flush(); a != 1 || d != 0 {
		t.Fatalf("flush applied/dropped = %d/%d, want 1/0", a, d)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending() = %d after flush, want 0", l.Pending())
	}
	// Double flush: nothing left.
	if a, d := l.Flush(); a != 0 || d != 0 {
		t.Fatalf("second flush applied/dropped = %d/%d", a, d)
	}
	if a, d := l.Close(); a != 0 || d != 0 {
		t.Fatalf("close applied/dropped = %d/%d", a, d)
	}
	if ea.Gen() != 1 || ea.Draws() != 1 {
		t.Fatalf("Gen/Draws = %d/%d, want 1/1", ea.Gen(), ea.Draws())
	}
}

// TestEpochLateStarAcrossLocals checks star reconciliation across epoch
// boundaries and writers: draws of a node flushed WITHOUT star data are
// backfilled when another local later flushes the node's star record, a
// degree upgrade retrofits already-published draws, and star-less draws
// flushed AFTER the directory learned the star data are credited with it.
// Each variant must match a single-lock accumulator fed the same records.
func TestEpochLateStarAcrossLocals(t *testing.T) {
	bare := sample.NodeObservation{Node: 5, Cat: 0}
	starred := sample.NodeObservation{Node: 5, Cat: 0, Deg: 3,
		NbrCat: []int32{0, 1}, NbrCnt: []float64{1, 2}}
	other := sample.NodeObservation{Node: 9, Cat: 1, Deg: 2,
		NbrCat: []int32{0}, NbrCnt: []float64{2}}
	cases := map[string][]sample.NodeObservation{
		// Late-star backfill: two bare draws publish first, the starred
		// re-draw arrives from another local.
		"backfill": {bare, bare, starred, other},
		// Credit from the directory: the starred draw publishes first, a
		// later local's bare draws inherit the star data.
		"credit": {starred, bare, bare, other},
		// Sandwich: bare, starred, bare across three epochs.
		"sandwich": {bare, starred, bare, other},
	}
	for name, recs := range cases {
		single, err := NewAccumulator(Config{K: 2, Star: true, N: 100})
		if err != nil {
			t.Fatal(err)
		}
		ea, err := NewEpochAccumulator(Config{K: 2, Star: true, N: 100}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := single.Ingest(rec); err != nil {
				t.Fatalf("%s: single ingest: %v", name, err)
			}
			// A fresh Local per record: every draw crosses an epoch
			// boundary, maximizing directory reconciliation.
			l := ea.NewLocal()
			if err := l.Ingest(rec); err != nil {
				t.Fatalf("%s: local ingest: %v", name, err)
			}
			if _, dropped := l.Close(); dropped > 0 {
				t.Fatalf("%s: flush dropped %d records", name, dropped)
			}
		}
		want, err := single.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ea.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > 1e-12 {
			t.Fatalf("%s: size mismatch %g", name, d)
		}
		if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > 1e-12 {
			t.Fatalf("%s: weight mismatch %g", name, d)
		}
		if d := maxRelDiff(got.Within, want.Within); d > 1e-12 {
			t.Fatalf("%s: within mismatch %g", name, d)
		}
	}
}

// TestEpochSnapshotDuringMerge races snapshots against concurrent flushes
// of overlapping node sets and checks every observed snapshot is coherent:
// draw counts are monotone in snapshot sequence, never exceed the stream,
// and the linear estimates (sizes, within-densities) are always finite.
// Run under -race.
func TestEpochSnapshotDuringMerge(t *testing.T) {
	g := testGraph(t)
	s, err := sample.UIS{}.Sample(randx.New(13), g, 6000)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]sample.NodeObservation, s.Len())
	for i, v := range s.Nodes {
		so, err := sample.NewStreamObserver(g, true)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = so.Observe(v, s.Weight(i))
	}
	ea, err := NewEpochAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := ea.NewLocal()
			defer l.Close()
			for i := w; i < len(recs); i += workers {
				if err := l.Ingest(recs[i]); err != nil {
					t.Error(err)
					return
				}
				// Tiny epochs: merges happen constantly under the poller.
				if l.Pending() >= 16 {
					l.Flush()
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		lastDraws := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := ea.Snapshot()
			if err != nil {
				continue
			}
			if snap.Draws < lastDraws || snap.Draws > len(recs) {
				t.Errorf("snapshot draws %d not in [%d, %d]", snap.Draws, lastDraws, len(recs))
				return
			}
			lastDraws = snap.Draws
			for c, sz := range snap.Result.Sizes {
				if math.IsNaN(sz) || math.IsInf(sz, 0) || sz < 0 {
					t.Errorf("snapshot size[%d] = %g at %d draws", c, sz, snap.Draws)
					return
				}
			}
			for c, w := range snap.Within {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					t.Errorf("snapshot within[%d] = %g at %d draws", c, w, snap.Draws)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		return
	}
	if ea.Draws() != len(recs) {
		t.Fatalf("Draws() = %d, want %d", ea.Draws(), len(recs))
	}
}
