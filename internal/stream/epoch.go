package stream

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// The multi-core ingest architecture: thread-local accumulation with
// epoch-based exact merge.
//
// The previous multi-core design (a hash-partitioned ShardedAccumulator)
// still took one mutex per record — just a different mutex per node — and
// the committed benchmarks showed it losing to the single lock outright:
// cross-core cache-line traffic on the shard locks and counters cost more
// than the partition saved. This design removes shared state from the
// per-record path entirely. Each writer owns a Local that records draws
// into private, writer-owned memory; a Flush (every FlushEvery records, at
// a crawl round barrier, or at the end of an HTTP batch) folds the epoch
// into the published view in two short phases:
//
//  1. Per node, under a striped lock on the shared node directory: validate
//     the node's constants (category, weight) against the directory,
//     reserve the node's draw interval [m, m+c) by advancing its published
//     multiplicity, and reconcile star data both ways (late-star backfill,
//     degree retrofit). Stripes are padded to a cache line and touched once
//     per DISTINCT node per epoch, not once per record.
//  2. Under the accumulator's single mutex: merge the epoch's core.Sums and
//     bootstrap replicates (core.Sums.Merge / uncert.Replicates.Merge) and
//     the collision scalars, then advance Gen by the number of applied
//     records. The serialized work is O(K + touched·B + pairs) per epoch —
//     amortized sub-nanosecond per record at any realistic epoch size.
//
// Exactness. All star-scenario statistics are linear in the per-node draw
// multiplicities except two: the colliding-pair count Σ_v m_v(m_v−1)/2 and
// Rew2's per-node squares Σ_v (m_v/w_v)². Both telescope: an epoch that
// advances a node from multiplicity m to m+c contributes exactly
// f(m+c) − f(m), which the flush computes from the reserved interval
// (AddNode/AddDraws with prev = m). Because reservation is serialized per
// node and the increments are pure additions, any interleaving of epoch
// merges sums to the pooled stream's statistics — the same ≤ 1e-9 agreement
// with a single-lock accumulator the sharded design had, now without per-
// record locks. (Between a flush's reservation and its merge the published
// collision count can transiently include draws not yet merged; the linear
// statistics behind sizes, weights and densities are unaffected, and the
// view is exact whenever no flush is mid-flight.)
//
// Visibility contract: records become visible to Snapshot, Draws and Gen
// when their epoch is FLUSHED, not when Ingest returns on a Local. The
// EpochAccumulator's own Ingest/IngestBatch flush internally before
// returning, so the Ingester-level contract — an acked record is included
// in any snapshot taken after a Gen read that postdates the ack — is
// unchanged from the single-lock accumulator.

// epochStripes is the size of the shared node directory's lock striping
// (power of two; 64 stripes keeps contention negligible far beyond the
// writer counts the benchmarks exercise).
const epochStripes = 64

// defaultFlushEvery is the auto-flush threshold of a Local when the
// accumulator was built with flushEvery = 0: large enough to amortize the
// flush to noise, small enough to keep the published view fresh and the
// epoch's node map cache-resident.
const defaultFlushEvery = 1024

// sharedNode is the published per-node state in the accumulator's striped
// directory: the per-node constants every epoch must agree on, the flushed
// multiplicity, and the reconciled star data. Slices are replaced, never
// mutated in place, so a reference read under the stripe lock stays valid
// after release.
type sharedNode struct {
	mult     float64
	weight   float64
	cat      int32
	starSeen bool
	deg      float64
	nbrCat   []int32
	nbrCnt   []float64
}

// nodeStripe is one lock-striped slice of the node directory, padded so
// that adjacent stripes' locks never share a cache line.
type nodeStripe struct {
	mu    sync.Mutex
	nodes map[int32]*sharedNode
	_     [40]byte
}

// EpochAccumulator is the multi-core accumulator: writers ingest into
// private Locals (NewLocal) and publish by flushing epochs, so the
// per-record hot path touches no shared state at all. It implements
// Ingester — its own Ingest/IngestBatch run an internal Local and flush
// before returning, preserving the single-lock accumulator's ack-visibility
// and batch-prefix semantics — and its snapshots equal a single-lock
// accumulator's for the same records to ≤ 1e-9 (see the package tests).
//
// The epoch design requires the star scenario. Star records are per-node
// self-contained (degree + neighbor-category counts), so epochs compose by
// pure addition once each node's draw interval is reserved. Induced records
// are cross-referential — an edge's mass couples the live multiplicities of
// two nodes — so induced streams must use the single-lock Accumulator.
type EpochAccumulator struct {
	cfg        Config
	flushEvery int

	stripes  [epochStripes]nodeStripe
	distinct core.PaddedInt64

	// gen is the ingest generation: advanced by each flush, by the number
	// of records the flush applied, inside the published-view critical
	// section. Padded: it is the one counter every flush and every
	// /estimate cache probe touches.
	gen core.PaddedUint64

	// flushGate serializes flushes against ExportFull. Flushes hold it
	// shared for the phase-1→phase-2 span (one RWMutex op per epoch, not
	// per record); ExportFull takes it exclusively so its cut never sees a
	// directory reservation whose sums merge is still mid-flight.
	flushGate sync.RWMutex

	// mu guards the published view: the merged sums and replicates, the
	// collision scalars, and the convergence baseline.
	mu         sync.Mutex
	sums       *core.Sums
	reps       *uncert.Replicates
	psi1       float64
	psiInv     float64
	collisions float64
	lastSizes  []float64
	lastW      *core.PairWeights
	lastDraws  float64
	seq        int64

	// pool recycles the internal Locals behind Ingest/IngestBatch so the
	// compatibility path does not allocate an epoch (sums + replicate
	// grids) per call.
	pool sync.Pool
}

// NewEpochAccumulator returns an empty epoch-merged accumulator. The
// configuration must select the star scenario (see the type comment).
// flushEvery is the auto-flush threshold of its Locals in records (0 means
// 1024): larger epochs amortize the merge further, smaller ones publish
// sooner.
func NewEpochAccumulator(cfg Config, flushEvery int) (*EpochAccumulator, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: config needs K ≥ 1 categories, got %d", cfg.K)
	}
	if cfg.Replicates.B < 0 {
		return nil, fmt.Errorf("stream: config needs ≥ 0 bootstrap replicates, got %d", cfg.Replicates.B)
	}
	if !cfg.Star {
		return nil, fmt.Errorf("stream: epoch-merged ingest requires the star scenario (induced edge masses couple nodes across epochs); use the single-lock Accumulator for induced streams")
	}
	if flushEvery < 0 {
		return nil, fmt.Errorf("stream: need flushEvery ≥ 0, got %d", flushEvery)
	}
	if flushEvery == 0 {
		flushEvery = defaultFlushEvery
	}
	ea := &EpochAccumulator{
		cfg:        cfg,
		flushEvery: flushEvery,
		sums:       core.NewSums(cfg.K, true),
	}
	if cfg.Replicates.Enabled() {
		reps, err := uncert.NewReplicates(cfg.K, true, cfg.Replicates)
		if err != nil {
			return nil, err
		}
		ea.reps = reps
	}
	for i := range ea.stripes {
		ea.stripes[i].nodes = make(map[int32]*sharedNode)
	}
	ea.pool.New = func() any { return ea.newLocal(false) }
	return ea, nil
}

// Config returns the accumulator's configuration.
func (ea *EpochAccumulator) Config() Config { return ea.cfg }

// Gen implements Ingester: the monotone ingest generation, advanced at
// flush by the number of records the flush applied.
func (ea *EpochAccumulator) Gen() uint64 { return ea.gen.Load() }

// Draws returns the number of draws flushed into the published view so far.
// Records sitting in an unflushed Local are not yet counted — the
// flush-visibility contract (see the architecture comment above).
func (ea *EpochAccumulator) Draws() int { return int(ea.gen.Load()) }

// Distinct returns the number of distinct nodes in the published view.
func (ea *EpochAccumulator) Distinct() int { return int(ea.distinct.Load()) }

// stripeFor routes a node id to its directory stripe with a full-avalanche
// integer hash (the 32-bit "lowbias" mix), so adjacent crawler id ranges
// spread evenly.
func (ea *EpochAccumulator) stripeFor(node int32) *nodeStripe {
	h := uint32(node)
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return &ea.stripes[h&(epochStripes-1)]
}

// Ingest folds one node observation through an internal Local and flushes
// immediately, so the record is visible when the call returns — the
// drop-in compatibility path for callers that need per-record acks. Bulk
// writers should hold their own Local (NewLocal) instead and flush per
// epoch. A record whose node lost a constants race against a concurrent
// writer (first-writer-wins, as under the sharded design) is reported as a
// redraw conflict.
func (ea *EpochAccumulator) Ingest(rec sample.NodeObservation) error {
	l := ea.pool.Get().(*Local)
	defer ea.pool.Put(l)
	if err := l.Ingest(rec); err != nil {
		return err
	}
	if _, dropped := l.Flush(); dropped > 0 {
		return fmt.Errorf("stream: node %d lost a first-writer race on its per-node constants (category/weight/star data) against a concurrent writer", rec.Node)
	}
	return nil
}

// IngestBatch folds a batch in order through an internal Local — one epoch
// per batch — stopping at the first invalid record and flushing what was
// accepted. It returns how many leading records were accepted, which is the
// retry index of the /ingest 422 protocol: recs[n] is the offender.
//
// Batch isolation under concurrency matches the sharded predecessor: a
// node's constants are fixed by whichever writer lands it first, so whether
// recs[n] validates can depend on interleaved writers. Additionally, under
// the epoch design a whole batch's draws of one node are dropped at the
// merge (and counted in stream_ingest_rejected_total{reason="flush_conflict"})
// if that node's constants lost the race between this batch's validation
// and its flush — the returned count then overcounts by the dropped
// records. Conflicts a batch can see locally (against its own records or
// the already-published directory) are still reported per index.
func (ea *EpochAccumulator) IngestBatch(recs []sample.NodeObservation) (int, error) {
	l := ea.pool.Get().(*Local)
	defer ea.pool.Put(l)
	for i, rec := range recs {
		if err := l.Ingest(rec); err != nil {
			l.Flush()
			return i, err
		}
	}
	l.Flush()
	return len(recs), nil
}

// Snapshot computes the current estimate from the published view in
// O(K² + pairs). It sees exactly the flushed epochs — see the
// flush-visibility contract.
func (ea *EpochAccumulator) Snapshot() (*Snapshot, error) {
	defer mSnapshotSec.ObserveSince(time.Now())
	ea.mu.Lock()
	defer ea.mu.Unlock()
	if ea.sums.Draws == 0 {
		return nil, fmt.Errorf("stream: empty accumulator")
	}
	res, err := ea.sums.Estimate(core.Options{N: ea.cfg.N, Size: ea.cfg.Size})
	if err != nil {
		return nil, err
	}
	within, err := ea.sums.WithinWeightsStar(res.Sizes)
	if err != nil {
		return nil, err
	}
	ea.seq++
	snap := &Snapshot{
		Seq:         ea.seq,
		Draws:       int(ea.sums.Draws),
		Distinct:    int(ea.distinct.Load()),
		Result:      res,
		Within:      within,
		PopEstimate: core.PopulationSizeFromSums(ea.sums.Draws, ea.psi1, ea.psiInv, ea.collisions),
		Converge:    convergeFrom(res, ea.lastSizes, ea.lastW, int(ea.sums.Draws-ea.lastDraws)),
	}
	if ea.reps != nil {
		snap.Boot = ea.reps.Snapshot(core.Options{N: ea.cfg.N, Size: ea.cfg.Size})
	}
	ea.lastSizes = append([]float64(nil), res.Sizes...)
	ea.lastW = res.Weights
	ea.lastDraws = ea.sums.Draws
	return snap, nil
}

// localNode is one node's epoch-private state: the draw count of this
// epoch, the node's constants (snapshotted from the shared directory at
// first touch, or fixed by the epoch's first record), and the epoch's
// merged star view. nbrCat/nbrCnt reuse their backing arrays across epochs.
type localNode struct {
	node        int32
	cat         int32
	count       float64
	weight      float64
	sharedKnown bool
	starSeen    bool
	deg         float64
	nbrCat      []int32
	nbrCnt      []float64
}

// Local is a writer-private accumulator over one EpochAccumulator: Ingest
// touches only writer-owned memory (plus one striped directory read per
// distinct node per epoch), and Flush publishes the epoch. A Local is NOT
// safe for concurrent use — it is the "one per walker / one per connection"
// half of the design; concurrency lives across Locals, not within one.
// Flush and the accumulator's snapshots may race freely with other Locals.
type Local struct {
	ea    *EpochAccumulator
	epoch map[int32]int32
	nodes []localNode
	recs  int

	// pending mirrors recs atomically for the stream_local_pending_records
	// gauge (written only by the owning writer, read by the metrics
	// scraper).
	pending core.PaddedInt64

	// sums/reps are the flush scratch: zeroed between epochs (Reset), so a
	// steady-state flush allocates nothing.
	sums *core.Sums
	reps *uncert.Replicates

	registered bool
}

// localRegistry tracks live registered Locals for the pending-records
// gauge.
var localRegistry = struct {
	sync.Mutex
	set map[*Local]struct{}
}{set: make(map[*Local]struct{})}

func init() {
	obs.NewGaugeFunc("stream_local_pending_records",
		"Records accepted by live epoch locals but not yet flushed into a published view.",
		func() float64 {
			localRegistry.Lock()
			defer localRegistry.Unlock()
			var n int64
			for l := range localRegistry.set {
				n += l.pending.Load()
			}
			return float64(n)
		})
}

// NewLocal returns a new writer-private Local. The caller owns it: one
// goroutine ingests, and Flush (or Close, when done) publishes. Locals
// auto-flush after the accumulator's flushEvery records as a safety valve.
func (ea *EpochAccumulator) NewLocal() *Local {
	return ea.newLocal(true)
}

func (ea *EpochAccumulator) newLocal(register bool) *Local {
	l := &Local{
		ea:    ea,
		epoch: make(map[int32]int32),
		sums:  core.NewSums(ea.cfg.K, true),
	}
	if ea.reps != nil {
		// Same config as the published replicates, so Merge cannot fail.
		reps, err := uncert.NewReplicates(ea.cfg.K, true, ea.cfg.Replicates)
		if err != nil {
			panic(err)
		}
		l.reps = reps
	}
	if register {
		l.registered = true
		localRegistry.Lock()
		localRegistry.set[l] = struct{}{}
		localRegistry.Unlock()
	}
	return l
}

// Pending returns the number of accepted records not yet flushed.
func (l *Local) Pending() int { return l.recs }

// Close flushes the Local and removes it from the pending-records gauge.
// The Local must not be used afterwards.
func (l *Local) Close() (applied, dropped int) {
	applied, dropped = l.Flush()
	if l.registered {
		localRegistry.Lock()
		delete(localRegistry.set, l)
		localRegistry.Unlock()
		l.registered = false
	}
	return applied, dropped
}

// lookupShared snapshots a node's published constants (ok=false when the
// node is not in the directory yet). The snapshot is returned by value —
// not as a fresh heap copy, which would cost one allocation per distinct
// node per epoch on the ingest hot path — and its slices are safe to
// reference after the stripe lock is released: directory slices are
// replaced, never mutated.
func (ea *EpochAccumulator) lookupShared(node int32) (sharedNode, bool) {
	st := ea.stripeFor(node)
	st.mu.Lock()
	sh := st.nodes[node]
	if sh == nil {
		st.mu.Unlock()
		return sharedNode{}, false
	}
	cp := *sh
	st.mu.Unlock()
	return cp, true
}

// Ingest folds one node observation into the epoch. Validation matches the
// single-lock accumulator record for record — invalid categories, weights
// and star fields, scenario mismatches, and conflicts with the node's
// constants as known to this epoch (its own earlier records, or the
// published directory at the node's first touch) are rejected without
// changing any state. Conflicts created by writers racing AFTER the first
// touch surface at Flush instead (the epoch's draws of that node are
// dropped and counted); see IngestBatch on the EpochAccumulator.
func (l *Local) Ingest(rec sample.NodeObservation) error {
	cfg := &l.ea.cfg
	if rec.Cat != graph.None && (rec.Cat < 0 || int(rec.Cat) >= cfg.K) {
		return reject("bad_category", "stream: node %d has category %d outside [0,%d)", rec.Node, rec.Cat, cfg.K)
	}
	if math.IsNaN(rec.Weight) || math.IsInf(rec.Weight, 0) || rec.Weight < 0 {
		return reject("bad_weight", "stream: node %d has invalid sampling weight %g (0 means 1; negative, NaN and infinite are rejected)", rec.Node, rec.Weight)
	}
	if len(rec.Peers) > 0 {
		return reject("scenario_mismatch", "stream: node %d carries induced peers but the accumulator runs the star scenario", rec.Node)
	}
	w := rec.Weight
	if w == 0 {
		w = 1
	}
	var ln *localNode
	var shared sharedNode
	var sharedOK bool
	if idx, known := l.epoch[rec.Node]; known {
		ln = &l.nodes[idx]
	} else {
		shared, sharedOK = l.ea.lookupShared(rec.Node)
	}
	// The node's constants as this epoch knows them: from its earlier
	// records, or from the directory snapshot just taken.
	knownCat, knownWeight := rec.Cat, w
	constrained := false
	switch {
	case ln != nil:
		knownCat, knownWeight, constrained = ln.cat, ln.weight, true
	case sharedOK:
		knownCat, knownWeight, constrained = shared.cat, shared.weight, true
	}
	if constrained {
		if rec.Cat != knownCat {
			return reject("redraw_conflict", "stream: node %d re-drawn with category %d, conflicting with its first observation (category %d)", rec.Node, rec.Cat, knownCat)
		}
		if rec.Weight != 0 && w != knownWeight {
			return reject("redraw_conflict", "stream: node %d re-drawn with sampling weight %g, conflicting with its first observation (weight %g)", rec.Node, w, knownWeight)
		}
	}
	// Star data: validate and reconcile against the epoch's merged view
	// BEFORE mutating anything, so a rejected record leaves the epoch
	// unchanged.
	carries := len(rec.NbrCat) > 0 || len(rec.NbrCnt) > 0 || rec.Deg != 0
	var newDeg float64
	var newCat []int32
	var newCnt []float64
	upgrade := false
	if carries {
		if err := sample.ValidateStarFields(cfg.K, rec); err != nil {
			return reject("bad_star", "stream: %w", err)
		}
		cat, cnt := sample.CanonicalStarCounts(rec.NbrCat, rec.NbrCnt)
		viewSeen := (ln != nil && ln.starSeen) || (ln == nil && sharedOK && shared.starSeen)
		if viewSeen {
			var vDeg float64
			var vCat []int32
			var vCnt []float64
			if ln != nil {
				vDeg, vCat, vCnt = ln.deg, ln.nbrCat, ln.nbrCnt
			} else {
				vDeg, vCat, vCnt = shared.deg, shared.nbrCat, shared.nbrCnt
			}
			d, ct, cn, err := sample.ReconcileStarData(rec.Node, rec.Deg, cat, cnt, vDeg, vCat, vCnt)
			if err != nil {
				return reject("star_conflict", "stream: %w", err)
			}
			if d != vDeg || len(ct) != len(vCat) {
				newDeg, newCat, newCnt, upgrade = d, ct, cn, true
			}
		} else {
			newDeg = sample.EffectiveStarDegree(rec.Deg, cnt)
			newCat, newCnt, upgrade = cat, cnt, true
		}
	}
	// All checks passed: mutate the epoch.
	if ln == nil {
		n := len(l.nodes)
		if n < cap(l.nodes) {
			l.nodes = l.nodes[:n+1]
		} else {
			l.nodes = append(l.nodes, localNode{})
		}
		ln = &l.nodes[n]
		ln.node, ln.cat, ln.weight = rec.Node, knownCat, knownWeight
		ln.count = 0
		ln.sharedKnown = sharedOK
		ln.starSeen = false
		if sharedOK && shared.starSeen {
			ln.starSeen = true
			ln.deg = shared.deg
			ln.nbrCat = append(ln.nbrCat[:0], shared.nbrCat...)
			ln.nbrCnt = append(ln.nbrCnt[:0], shared.nbrCnt...)
		} else {
			ln.deg = 0
			ln.nbrCat = ln.nbrCat[:0]
			ln.nbrCnt = ln.nbrCnt[:0]
		}
		l.epoch[rec.Node] = int32(n)
	}
	if upgrade {
		ln.starSeen = true
		ln.deg = newDeg
		ln.nbrCat = append(ln.nbrCat[:0], newCat...)
		ln.nbrCnt = append(ln.nbrCnt[:0], newCnt...)
	}
	ln.count++
	l.recs++
	l.pending.Store(int64(l.recs))
	if l.recs >= l.ea.flushEvery {
		l.Flush()
	}
	return nil
}

// Flush publishes the epoch: reserves every node's draw interval in the
// shared directory (phase 1, striped locks), computes the epoch's batched
// statistics against the reserved intervals in writer-private memory, and
// merges them into the published view under one short critical section
// (phase 2). It returns how many records were applied and how many were
// dropped because their node's constants lost a first-writer race since the
// epoch validated them (counted under reason "flush_conflict"). Flushing an
// empty epoch is a cheap no-op.
func (l *Local) Flush() (applied, dropped int) {
	if l.recs == 0 {
		return 0, 0
	}
	t0 := time.Now()
	ea := l.ea
	ea.flushGate.RLock()
	var psi1, psiInv, coll float64
	for i := range l.nodes {
		ln := &l.nodes[i]
		c := ln.count
		st := ea.stripeFor(ln.node)

		// Phase 1 for this node: validate, reserve [m, m+c), reconcile
		// star data. Slices referenced out of the directory stay valid
		// after unlock (replace-not-mutate discipline).
		var m float64
		var viewSeen bool
		var viewDeg float64
		var viewCat []int32
		var viewCnt []float64
		var retroDeg float64
		var retroCat []int32
		var retroCnt []float64
		st.mu.Lock()
		sh, ok := st.nodes[ln.node]
		if !ok {
			sh = &sharedNode{mult: c, weight: ln.weight, cat: ln.cat}
			if ln.starSeen {
				sh.starSeen = true
				sh.deg = ln.deg
				sh.nbrCat = append([]int32(nil), ln.nbrCat...)
				sh.nbrCnt = append([]float64(nil), ln.nbrCnt...)
			}
			st.nodes[ln.node] = sh
			ea.distinct.Add(1)
			viewSeen, viewDeg, viewCat, viewCnt = sh.starSeen, sh.deg, sh.nbrCat, sh.nbrCnt
			st.mu.Unlock()
		} else {
			if ln.cat != sh.cat || ln.weight != sh.weight {
				st.mu.Unlock()
				dropped += int(c)
				mRejected.With("flush_conflict").Add(int64(c))
				continue
			}
			m = sh.mult
			conflict := false
			switch {
			case ln.starSeen && sh.starSeen:
				d, ct, cn, err := sample.ReconcileStarData(ln.node, ln.deg, ln.nbrCat, ln.nbrCnt, sh.deg, sh.nbrCat, sh.nbrCnt)
				if err != nil {
					conflict = true
					break
				}
				if d != sh.deg || len(ct) != len(sh.nbrCat) {
					// Retrofit the directory's m earlier draws with the
					// upgraded information: the degree delta, plus the
					// adopted counts when the stored list grew.
					retroDeg = d - sh.deg
					if len(ct) != len(sh.nbrCat) {
						retroCat, retroCnt = ct, cn
					}
					sh.deg = d
					sh.nbrCat = append([]int32(nil), ct...)
					sh.nbrCnt = append([]float64(nil), cn...)
				}
				viewSeen, viewDeg, viewCat, viewCnt = true, sh.deg, sh.nbrCat, sh.nbrCnt
			case ln.starSeen && !sh.starSeen:
				// Late-star backfill across epochs: the directory's m
				// draws contributed zero star mass; credit them with the
				// epoch's star data.
				sh.starSeen = true
				sh.deg = ln.deg
				sh.nbrCat = append([]int32(nil), ln.nbrCat...)
				sh.nbrCnt = append([]float64(nil), ln.nbrCnt...)
				retroDeg = sh.deg
				retroCat, retroCnt = sh.nbrCat, sh.nbrCnt
				viewSeen, viewDeg, viewCat, viewCnt = true, sh.deg, sh.nbrCat, sh.nbrCnt
			case !ln.starSeen && sh.starSeen:
				// The epoch's draws carried no star data but the
				// directory has it: credit them with the published view.
				viewSeen, viewDeg, viewCat, viewCnt = true, sh.deg, sh.nbrCat, sh.nbrCnt
			}
			if conflict {
				st.mu.Unlock()
				dropped += int(c)
				mRejected.With("flush_conflict").Add(int64(c))
				continue
			}
			sh.mult += c
			st.mu.Unlock()
		}

		// Batched epoch math against the reserved interval, in private
		// memory — the nonlinear statistics telescope exactly from prev=m
		// (see the architecture comment).
		w, cat := ln.weight, ln.cat
		l.sums.AddNode(cat, w, c, m)
		psi1 += c * w
		psiInv += c / w
		coll += m*c + c*(c-1)/2
		if l.reps != nil {
			l.reps.AddDraws(ln.node, cat, w, c, m)
		}
		if viewSeen {
			l.sums.AddStar(cat, w, c, viewDeg, viewCat, viewCnt)
			if l.reps != nil {
				l.reps.AddStar(ln.node, cat, w, c, viewDeg, viewCat, viewCnt)
			}
		}
		if m > 0 && (retroDeg != 0 || retroCat != nil) {
			l.sums.AddStar(cat, w, m, retroDeg, retroCat, retroCnt)
			if l.reps != nil {
				l.reps.AddStar(ln.node, cat, w, m, retroDeg, retroCat, retroCnt)
			}
		}
		applied += int(c)
	}

	// Phase 2: one short critical section merges the epoch into the
	// published view and advances Gen by the applied records.
	ea.mu.Lock()
	if err := ea.sums.Merge(l.sums); err != nil {
		// Impossible by construction: the local shares cfg.K and scenario.
		ea.mu.Unlock()
		panic(err)
	}
	if ea.reps != nil {
		if err := ea.reps.Merge(l.reps); err != nil {
			ea.mu.Unlock()
			panic(err)
		}
	}
	ea.psi1 += psi1
	ea.psiInv += psiInv
	ea.collisions += coll
	ea.gen.Add(uint64(applied))
	ea.mu.Unlock()
	ea.flushGate.RUnlock()

	// Reset the epoch in place: every allocation (node slice, map buckets,
	// sums slices, replicate grids) is reused.
	l.sums.Reset()
	if l.reps != nil {
		l.reps.Reset()
	}
	clear(l.epoch)
	l.nodes = l.nodes[:0]
	l.recs = 0
	l.pending.Store(0)
	mIngested.Add(int64(applied))
	mFlushes.Inc()
	mFlushSec.ObserveSince(t0)
	return applied, dropped
}
