package stream

import (
	"repro/internal/core"
	"repro/internal/uncert"
)

// State is a consistent cut of everything an accumulator has learned from
// its stream: the primary Hansen–Hurwitz sums, the §4.3 collision scalars,
// the bootstrap replicate sums (nil when the bootstrap is off), and the
// ingest generation identifying the cut. It is the unit of the distributed
// estimation tier — workers Export, internal/wire serializes, and a
// coordinator Pool re-merges states from many processes into the pooled
// estimate, exactly as if one accumulator had ingested every stream
// (see core.Sums.Merge for the exactness conditions; the nonlinear collision
// and Rew2 statistics pool exactly only when workers observe disjoint node
// sets, e.g. a hash partition of the id space).
//
// A State shares no mutable memory with the accumulator that produced it.
type State struct {
	// K and Star identify the partition and scenario.
	K    int
	Star bool
	// Gen is the accumulator's ingest generation at the cut: every record
	// whose ingest (or flush) completed before the Export call is included.
	Gen uint64
	// Distinct is the number of distinct nodes at (approximately) the cut.
	// For the EpochAccumulator it is informational: the distinct counter
	// advances outside the publish mutex, so it may momentarily disagree
	// with Sums by a node whose first flush is mid-flight.
	Distinct int64
	// Psi1, PsiInv and Collisions are the population-size statistics
	// (Σ m_v·w_v, Σ m_v/w_v, Σ m_v(m_v−1)/2).
	Psi1, PsiInv, Collisions float64
	// Sums holds the primary sufficient statistics.
	Sums *core.Sums
	// Reps holds the bootstrap replicate sums; nil when the accumulator
	// runs without replicates.
	Reps *uncert.Replicates
}

// Export implements Ingester: a consistent cut of the accumulator's state,
// taken under the accumulator lock so the sums, collision scalars,
// replicates and generation all describe the same set of applied records.
// Exporting an empty accumulator succeeds — the zero state merges as a
// no-op, which is exactly what a coordinator wants from a worker that has
// not ingested yet.
func (a *Accumulator) Export() (*State, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &State{
		K:          a.cfg.K,
		Star:       a.cfg.Star,
		Gen:        a.gen.Load(),
		Distinct:   int64(len(a.nodes)),
		Psi1:       a.psi1,
		PsiInv:     a.psiInv,
		Collisions: a.collisions,
		Sums:       core.NewSums(a.cfg.K, a.cfg.Star),
	}
	// Merging into a fresh sums of the same K and scenario cannot fail.
	if err := st.Sums.Merge(a.sums); err != nil {
		panic(err)
	}
	if a.reps != nil {
		st.Reps = a.reps.Clone()
	}
	return st, nil
}

// Export implements Ingester for the epoch-merged accumulator. The cut is
// taken under the publish mutex: flushes advance the generation inside the
// same critical section that merges their sums and replicates (see
// Local.Flush phase 2), so the exported (Sums, Reps, collision scalars, Gen)
// are mutually consistent — a flush is either fully in the cut or fully
// outside it. Records sitting in unflushed Locals are not exported, matching
// the flush-visibility contract of Snapshot. Distinct is informational (see
// State.Distinct).
func (ea *EpochAccumulator) Export() (*State, error) {
	ea.mu.Lock()
	defer ea.mu.Unlock()
	st := &State{
		K:          ea.cfg.K,
		Star:       true,
		Gen:        ea.gen.Load(),
		Distinct:   ea.distinct.Load(),
		Psi1:       ea.psi1,
		PsiInv:     ea.psiInv,
		Collisions: ea.collisions,
		Sums:       core.NewSums(ea.cfg.K, true),
	}
	if err := st.Sums.Merge(ea.sums); err != nil {
		panic(err)
	}
	if ea.reps != nil {
		st.Reps = ea.reps.Clone()
	}
	return st, nil
}
