package stream

import (
	"repro/internal/core"
	"repro/internal/uncert"
)

// State is a consistent cut of everything an accumulator has learned from
// its stream: the primary Hansen–Hurwitz sums, the §4.3 collision scalars,
// the bootstrap replicate sums (nil when the bootstrap is off), and the
// ingest generation identifying the cut. It is the unit of the distributed
// estimation tier — workers Export, internal/wire serializes, and a
// coordinator Pool re-merges states from many processes into the pooled
// estimate, exactly as if one accumulator had ingested every stream
// (see core.Sums.Merge for the exactness conditions; the nonlinear collision
// and Rew2 statistics pool exactly only when workers observe disjoint node
// sets, e.g. a hash partition of the id space).
//
// A State shares no mutable memory with the accumulator that produced it.
type State struct {
	// K and Star identify the partition and scenario.
	K    int
	Star bool
	// Gen is the accumulator's ingest generation at the cut: every record
	// whose ingest (or flush) completed before the Export call is included.
	Gen uint64
	// Distinct is the number of distinct nodes at (approximately) the cut.
	// For the EpochAccumulator it is informational: the distinct counter
	// advances outside the publish mutex, so it may momentarily disagree
	// with Sums by a node whose first flush is mid-flight.
	Distinct int64
	// Psi1, PsiInv and Collisions are the population-size statistics
	// (Σ m_v·w_v, Σ m_v/w_v, Σ m_v(m_v−1)/2).
	Psi1, PsiInv, Collisions float64
	// Sums holds the primary sufficient statistics.
	Sums *core.Sums
	// Reps holds the bootstrap replicate sums; nil when the accumulator
	// runs without replicates.
	Reps *uncert.Replicates
}

// stateShell is the pre-allocated destination of a two-phase export: every
// buffer a State copy needs, built OUTSIDE the accumulator's publish mutex
// so the critical section only moves bytes. Deep-copying a B=200 replicate
// set allocates and zeroes O(K·B + pairs·B) float64s and builds maps — work
// that used to run under the publish mutex and stall every concurrent
// ingest for the whole copy. The shell pulls all of it off the lock: the
// locked half (copyFrom) is flat memcpys plus a map fill whose vectors come
// from a reserved arena.
type stateShell struct {
	st   *State
	reps *uncert.Replicates
}

// newStateShell allocates the destination buffers for an export of the
// given shape. repPairs is the pair count observed under a brief peek at
// the source; headroom covers pairs created between the peek and the copy
// (the locked copy falls back to the heap for rare growth past it).
func newStateShell(cfg Config, withReps bool, repPairs int) (*stateShell, error) {
	sh := &stateShell{st: &State{
		K:    cfg.K,
		Star: cfg.Star,
		Sums: core.NewSums(cfg.K, cfg.Star),
	}}
	if withReps {
		reps, err := uncert.NewReplicates(cfg.K, cfg.Star, cfg.Replicates)
		if err != nil {
			return nil, err
		}
		reps.ReservePairs(repPairs + repPairs/8 + 4)
		sh.reps = reps
	}
	return sh, nil
}

// copyFrom is the locked half: flat copies of the source sums, scalars and
// replicate state into the pre-allocated shell. The caller holds whatever
// mutex makes (sums, reps, scalars, gen) mutually consistent.
func (sh *stateShell) copyFrom(sums *core.Sums, reps *uncert.Replicates, gen uint64, distinct int64, psi1, psiInv, collisions float64) error {
	sh.st.Gen = gen
	sh.st.Distinct = distinct
	sh.st.Psi1, sh.st.PsiInv, sh.st.Collisions = psi1, psiInv, collisions
	if err := sh.st.Sums.CopyFrom(sums); err != nil {
		return err
	}
	if sh.reps != nil && reps != nil {
		if err := sh.reps.CopyFrom(reps); err != nil {
			return err
		}
		sh.st.Reps = sh.reps
	}
	return nil
}

// Export implements Ingester: a consistent cut of the accumulator's state,
// with the (sums, collision scalars, replicates, generation) all describing
// the same set of applied records. Exporting an empty accumulator succeeds —
// the zero state merges as a no-op, which is exactly what a coordinator
// wants from a worker that has not ingested yet.
//
// The copy is two-phase so concurrent ingest is stalled only for the flat
// byte moves: a brief lock reads the replicate pair count, the destination
// buffers (fresh sums, B replicate vectors and grids, the pair arena) are
// allocated unlocked, and a second short critical section memcpys the state
// across (see stateShell).
func (a *Accumulator) Export() (*State, error) {
	repPairs := 0
	if a.reps != nil {
		a.mu.Lock()
		repPairs = a.reps.PairCount()
		a.mu.Unlock()
	}
	sh, err := newStateShell(a.cfg, a.reps != nil, repPairs)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	err = sh.copyFrom(a.sums, a.reps, a.gen.Load(), int64(len(a.nodes)), a.psi1, a.psiInv, a.collisions)
	a.mu.Unlock()
	if err != nil {
		// Impossible by construction: the shell shares cfg.K and scenario.
		panic(err)
	}
	return sh.st, nil
}

// Export implements Ingester for the epoch-merged accumulator. The cut is
// taken under the publish mutex: flushes advance the generation inside the
// same critical section that merges their sums and replicates (see
// Local.Flush phase 2), so the exported (Sums, Reps, collision scalars, Gen)
// are mutually consistent — a flush is either fully in the cut or fully
// outside it. Records sitting in unflushed Locals are not exported, matching
// the flush-visibility contract of Snapshot. Distinct is informational (see
// State.Distinct). Like the single-lock accumulator, the copy is two-phase:
// allocation outside the publish mutex, flat byte moves inside, so flushes
// racing an export wait only for the memcpy.
func (ea *EpochAccumulator) Export() (*State, error) {
	repPairs := 0
	if ea.reps != nil {
		ea.mu.Lock()
		repPairs = ea.reps.PairCount()
		ea.mu.Unlock()
	}
	sh, err := newStateShell(ea.cfg, ea.reps != nil, repPairs)
	if err != nil {
		return nil, err
	}
	ea.mu.Lock()
	err = sh.copyFrom(ea.sums, ea.reps, ea.gen.Load(), ea.distinct.Load(), ea.psi1, ea.psiInv, ea.collisions)
	ea.mu.Unlock()
	if err != nil {
		panic(err)
	}
	return sh.st, nil
}
