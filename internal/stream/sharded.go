package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// ShardedAccumulator is the multi-core variant of Accumulator: records are
// hash-partitioned by node id across P per-shard accumulators, each with its
// own lock and node map, so concurrent crawlers ingest with no global lock
// on the hot path. Snapshot briefly locks all shards, merges the
// per-shard Hansen–Hurwitz sums (core.Sums.Merge) in O(P·K² + pairs), and
// estimates from the pooled statistics — by the mergeability of the paper's
// design-based sums, the result equals a single accumulator's estimate of
// the same stream up to float reassociation (tested to 1e-9).
//
// Sharding requires the star scenario. Star records are per-node
// self-contained (degree + neighbor-category counts), and every draw of a
// node hashes to the same shard, so multiplicities and collision statistics
// stay exact. Induced records are cross-referential — an edge's mass
// m_a·m_b/(w_a·w_b) couples the live multiplicities of two nodes that would
// generally live in different shards — so induced streams must use the
// single-lock Accumulator.
type ShardedAccumulator struct {
	cfg    Config
	shards []*Accumulator

	// gen is the global ingest generation: one atomic counter advanced
	// after each successfully applied record. Summing the per-shard
	// counters instead can tear — a reader scanning shard 0 before shard 1
	// misses increments landing on already-scanned shards and can report a
	// total equal to an older consistent count, which is exactly the
	// stale-snapshot cache bug Gen exists to prevent.
	gen atomic.Uint64

	// mu serializes snapshots and guards the convergence baseline; it is
	// never taken on the ingest path.
	mu        sync.Mutex
	lastSizes []float64
	lastW     *core.PairWeights
	lastDraws float64
	seq       int64
}

// NewShardedAccumulator returns an empty sharded accumulator with the given
// number of shards (≥ 1). The configuration must select the star scenario —
// induced streams are order- and cross-node-dependent and cannot be
// partitioned by node id (see the type comment); use NewAccumulator for
// them.
func NewShardedAccumulator(cfg Config, shards int) (*ShardedAccumulator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("stream: need ≥ 1 shard, got %d", shards)
	}
	if !cfg.Star {
		return nil, fmt.Errorf("stream: sharding requires the star scenario (induced edge masses couple nodes across shards); use the single-lock Accumulator for induced streams")
	}
	sa := &ShardedAccumulator{cfg: cfg, shards: make([]*Accumulator, shards)}
	for i := range sa.shards {
		a, err := NewAccumulator(cfg)
		if err != nil {
			return nil, err
		}
		sa.shards[i] = a
	}
	return sa, nil
}

// Config returns the accumulator's configuration.
func (sa *ShardedAccumulator) Config() Config { return sa.cfg }

// Shards returns the number of shards.
func (sa *ShardedAccumulator) Shards() int { return len(sa.shards) }

// shard routes a node id to its shard with a full-avalanche integer hash
// (the 32-bit "lowbias" mix), so adjacent crawler id ranges spread evenly.
func (sa *ShardedAccumulator) shard(node int32) *Accumulator {
	h := uint32(node)
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return sa.shards[int(h%uint32(len(sa.shards)))]
}

// Draws returns the number of draws ingested so far. The count comes from
// the single atomic generation counter, not from summing the per-shard
// counters: a sum taken shard by shard under concurrent ingest can tear
// (increments land on shards already scanned) and thus report a stale total
// that still equals an earlier consistent count.
func (sa *ShardedAccumulator) Draws() int { return int(sa.gen.Load()) }

// Gen implements Ingester: the monotone ingest generation.
func (sa *ShardedAccumulator) Gen() uint64 { return sa.gen.Load() }

// Distinct returns the number of distinct nodes observed so far. Shards
// partition the id space, so the per-shard counts are disjoint and sum
// exactly.
func (sa *ShardedAccumulator) Distinct() int {
	n := 0
	for _, sh := range sa.shards {
		n += sh.Distinct()
	}
	return n
}

// Ingest folds one node observation into the owning shard; only that
// shard's lock is taken. Validation and error semantics are those of
// Accumulator.Ingest.
func (sa *ShardedAccumulator) Ingest(rec sample.NodeObservation) error {
	if err := sa.shard(rec.Node).Ingest(rec); err != nil {
		return err
	}
	sa.gen.Add(1)
	return nil
}

// IngestBatch folds a batch in stream order, routing each record to its
// shard, and stops at the first invalid record. It returns the number of
// leading records applied.
//
// The prefix contract under concurrency: the returned count is EXACT for
// this batch regardless of what other callers do — records are applied one
// at a time, strictly in batch order, so on error exactly the first n
// records of THIS batch are durable and recs[n] is the offender; the
// documented retry (resend recs[n:] after fixing or dropping recs[n], the
// /ingest 422 {ingested,total,index} protocol) therefore remains safe.
// What concurrency does change is batch ISOLATION: unlike the single-lock
// Accumulator, which applies a whole batch inside one critical section,
// records of concurrent sharded batches interleave record by record. A
// node's constants (category, weight, star data) are fixed by whichever
// record lands first across all batches, so whether recs[n] is valid can
// depend on records of other batches that interleaved before it — the
// count n stays exact either way, but the offending record may fail (or
// succeed) differently on a retry. Serializing batches would restore
// isolation at the cost of the very multi-core ingest sharding exists for;
// concurrent crawlers feeding one accumulator are independent samplers of
// the same static graph, for which first-writer-wins reconciliation is the
// intended semantics (see Accumulator.Ingest). The package tests pin the
// exact-count guarantee under -race.
func (sa *ShardedAccumulator) IngestBatch(recs []sample.NodeObservation) (int, error) {
	for i, rec := range recs {
		if err := sa.Ingest(rec); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}

// Snapshot merges the per-shard sufficient statistics and estimates from
// the pooled sums in O(P·K² + pairs) — times B when bootstrap replicates
// are configured. All shard locks are taken together to fix a consistent
// cut of the stream (every record ingested before the snapshot began is
// included, and no record is split), then each is released as soon as its
// shard's sums are merged out, so ingestion never waits on another shard's
// merge.
func (sa *ShardedAccumulator) Snapshot() (*Snapshot, error) {
	defer mSnapshotSec.ObserveSince(time.Now())
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sums := core.NewSums(sa.cfg.K, sa.cfg.Star)
	var reps *uncert.Replicates
	if sa.cfg.Replicates.Enabled() {
		r, err := uncert.NewReplicates(sa.cfg.K, sa.cfg.Star, sa.cfg.Replicates)
		if err != nil {
			return nil, err
		}
		reps = r
	}
	var psi1, psiInv, collisions float64
	distinct := 0
	// Taking every shard lock at once defines the snapshot's consistent
	// cut: every record ingested before this instant is included and none
	// is split. Each shard's lock is then released as soon as its
	// statistics are merged out — a record arriving at a released shard
	// postdates the cut and cannot affect it — so with bootstrap
	// replicates enabled (an O(B·K²) merge per shard) ingestion stalls
	// only for the owning shard's merge, not for the whole pass.
	for _, sh := range sa.shards {
		sh.mu.Lock()
	}
	var mergeErr error
	for _, sh := range sa.shards {
		if mergeErr == nil {
			// Merge errors are impossible by construction (all shards share
			// cfg), but keep draining the locks if one ever occurs.
			mergeErr = sums.Merge(sh.sums)
		}
		if mergeErr == nil && reps != nil {
			// Per-(node, replicate) weights make the per-shard replicate
			// sums merge exactly like the primary sums: nodes partition
			// across shards, and a node's weights travel with it.
			mergeErr = reps.Merge(sh.reps)
		}
		if mergeErr == nil {
			psi1 += sh.psi1
			psiInv += sh.psiInv
			collisions += sh.collisions
			distinct += len(sh.nodes)
		}
		sh.mu.Unlock()
	}
	if mergeErr != nil {
		return nil, mergeErr
	}
	if sums.Draws == 0 {
		return nil, fmt.Errorf("stream: empty accumulator")
	}
	res, err := sums.Estimate(core.Options{N: sa.cfg.N, Size: sa.cfg.Size})
	if err != nil {
		return nil, err
	}
	within, err := sums.WithinWeightsStar(res.Sizes)
	if err != nil {
		return nil, err
	}
	sa.seq++
	snap := &Snapshot{
		Seq:         sa.seq,
		Draws:       int(sums.Draws),
		Distinct:    distinct,
		Result:      res,
		Within:      within,
		PopEstimate: core.PopulationSizeFromSums(sums.Draws, psi1, psiInv, collisions),
		Converge:    convergeFrom(res, sa.lastSizes, sa.lastW, int(sums.Draws-sa.lastDraws)),
	}
	if reps != nil {
		snap.Boot = reps.Snapshot(core.Options{N: sa.cfg.N, Size: sa.cfg.Size})
	}
	sa.lastSizes = append([]float64(nil), res.Sizes...)
	sa.lastW = res.Weights
	sa.lastDraws = sums.Draws
	return snap, nil
}
