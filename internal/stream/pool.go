package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/uncert"
)

// ErrReadOnly is returned by the ingest methods of a Pool: a merge
// coordinator estimates from worker exports and never accepts its own
// records. Match with errors.Is to turn the sentinel into a protocol-level
// redirect ("ingest on the workers").
var ErrReadOnly = errors.New("stream: pool is read-only (it merges worker exports; ingest on the workers)")

// Pool is the coordinator-side accumulator of the distributed estimation
// tier: a read-only Ingester whose state is rebuilt from worker State
// exports instead of ingested record by record. Each Rebuild re-merges the
// supplied states from scratch — the merge algebra is the same
// core.Sums.Merge / uncert.Replicates.Merge the in-process paths use, so the
// pooled estimate (and, with replicates, every bootstrap CI) equals a single
// accumulator that ingested all worker streams, to the exactness conditions
// documented on core.Sums.Merge. Rebuilding from scratch rather than
// applying deltas is what makes worker failure tolerance trivial: a worker
// excluded from one Rebuild (dead, stale) simply costs its contribution and
// can rejoin later without any compensation bookkeeping. The O(K·B + pairs·B)
// rebuild runs once per coordinator poll interval, not per request.
//
// Pool is safe for concurrent use: Rebuild swaps the published view under a
// mutex, and snapshots are cached by the server layer off the generation,
// which advances once per Rebuild.
type Pool struct {
	cfg Config

	// gen advances once per Rebuild — the snapshot cache key, exactly like
	// the per-record generation of the live accumulators.
	gen atomic.Uint64

	mu         sync.Mutex
	sums       *core.Sums
	reps       *uncert.Replicates
	repCfg     uncert.Config
	psi1       float64
	psiInv     float64
	collisions float64
	distinct   int64
	lastSizes  []float64
	lastW      *core.PairWeights
	lastDraws  float64
	seq        int64
}

// NewPool returns an empty coordinator pool. cfg fixes the partition,
// scenario, population size and size method the coordinator estimates with;
// cfg.Replicates is ignored — the bootstrap configuration is adopted from
// the worker states at Rebuild (workers decide B and the seed, and all must
// agree for replicates to merge).
func NewPool(cfg Config) (*Pool, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: config needs K ≥ 1 categories, got %d", cfg.K)
	}
	cfg.Replicates = uncert.Config{}
	return &Pool{
		cfg:  cfg,
		sums: core.NewSums(cfg.K, cfg.Star),
	}, nil
}

// Rebuild replaces the pool's state with the merge of the given worker
// states. Every state must match the pool's partition and scenario; a
// mismatch fails the whole rebuild (identified by input index) and leaves
// the previous view serving. Replicates are all-or-nothing: the merged view
// carries bootstrap replicates only when EVERY input has them under one
// identical configuration — a partial bootstrap would silently misweight the
// missing workers' nodes in every replicate, so it is dropped instead (the
// primary estimate is unaffected). Rebuilding from zero states publishes an
// empty pool (snapshots fail until data arrives).
func (p *Pool) Rebuild(states []*State) error {
	sums := core.NewSums(p.cfg.K, p.cfg.Star)
	var psi1, psiInv, collisions float64
	var distinct int64
	withReps := len(states) > 0
	var repCfg uncert.Config
	for i, st := range states {
		if st == nil {
			return fmt.Errorf("stream: pool rebuild: state %d is nil", i)
		}
		if st.K != p.cfg.K {
			return fmt.Errorf("stream: pool rebuild: state %d covers %d categories, pool has %d", i, st.K, p.cfg.K)
		}
		if st.Star != p.cfg.Star {
			return fmt.Errorf("stream: pool rebuild: state %d has star=%v, pool has star=%v", i, st.Star, p.cfg.Star)
		}
		if err := sums.Merge(st.Sums); err != nil {
			return fmt.Errorf("stream: pool rebuild: state %d: %w", i, err)
		}
		psi1 += st.Psi1
		psiInv += st.PsiInv
		collisions += st.Collisions
		distinct += st.Distinct
		switch {
		case st.Reps == nil:
			withReps = false
		case i == 0 || !withReps:
			repCfg = st.Reps.Config()
		case st.Reps.Config() != repCfg:
			// Conflicting bootstrap configurations cannot merge; keep the
			// primary estimate and drop the CIs rather than fail the pool.
			withReps = false
		}
	}
	var reps *uncert.Replicates
	if withReps {
		var err error
		reps, err = uncert.NewReplicates(p.cfg.K, p.cfg.Star, repCfg)
		if err != nil {
			return fmt.Errorf("stream: pool rebuild: %w", err)
		}
		for i, st := range states {
			if err := reps.Merge(st.Reps); err != nil {
				return fmt.Errorf("stream: pool rebuild: state %d replicates: %w", i, err)
			}
		}
	}
	p.mu.Lock()
	p.sums = sums
	p.reps = reps
	if reps != nil {
		p.repCfg = repCfg
	} else {
		p.repCfg = uncert.Config{}
	}
	p.psi1, p.psiInv, p.collisions = psi1, psiInv, collisions
	p.distinct = distinct
	p.mu.Unlock()
	p.gen.Add(1)
	return nil
}

// Config implements Ingester. Replicates reflects the bootstrap
// configuration adopted from the workers at the last Rebuild (zero until a
// rebuild carried replicates), so the serving layer's "are CIs available"
// probe works unchanged against a pool.
func (p *Pool) Config() Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	cfg := p.cfg
	cfg.Replicates = p.repCfg
	return cfg
}

// Draws returns the number of draws in the merged view.
func (p *Pool) Draws() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.sums.Draws)
}

// Distinct returns the sum of the workers' distinct-node counts. Workers
// observe disjoint node sets under the partitioned deployment, where this is
// exact; overlapping crawls count shared nodes once per worker.
func (p *Pool) Distinct() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.distinct)
}

// Gen implements Ingester: it advances once per Rebuild, so snapshot caches
// keyed on it refresh exactly when the merged view changes.
func (p *Pool) Gen() uint64 { return p.gen.Load() }

// Ingest implements Ingester; a pool never accepts records.
func (p *Pool) Ingest(rec sample.NodeObservation) error { return ErrReadOnly }

// IngestBatch implements Ingester; a pool never accepts records.
func (p *Pool) IngestBatch(recs []sample.NodeObservation) (int, error) { return 0, ErrReadOnly }

// Snapshot computes the pooled estimate from the merged view — the same
// sequence the live accumulators run, including the bootstrap snapshot when
// the last Rebuild carried replicates, so /estimate?ci= on a coordinator
// serves exact merged-replicate CIs.
func (p *Pool) Snapshot() (*Snapshot, error) {
	defer mSnapshotSec.ObserveSince(time.Now())
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sums.Draws == 0 {
		return nil, fmt.Errorf("stream: empty pool (no worker state merged yet)")
	}
	res, err := p.sums.Estimate(core.Options{N: p.cfg.N, Size: p.cfg.Size})
	if err != nil {
		return nil, err
	}
	var within []float64
	if p.cfg.Star {
		within, err = p.sums.WithinWeightsStar(res.Sizes)
	} else {
		within, err = p.sums.WithinWeightsInduced()
	}
	if err != nil {
		return nil, err
	}
	p.seq++
	snap := &Snapshot{
		Seq:         p.seq,
		Draws:       int(p.sums.Draws),
		Distinct:    int(p.distinct),
		Result:      res,
		Within:      within,
		PopEstimate: core.PopulationSizeFromSums(p.sums.Draws, p.psi1, p.psiInv, p.collisions),
		Converge:    convergeFrom(res, p.lastSizes, p.lastW, int(p.sums.Draws-p.lastDraws)),
	}
	if p.reps != nil {
		snap.Boot = p.reps.Snapshot(core.Options{N: p.cfg.N, Size: p.cfg.Size})
	}
	p.lastSizes = append([]float64(nil), res.Sizes...)
	p.lastW = res.Weights
	p.lastDraws = p.sums.Draws
	return snap, nil
}

// Export implements Ingester: the merged view as a State of its own, which
// is what lets coordinators stack — a higher tier can pull /sums from a
// coordinator exactly as the coordinator pulls from its workers.
//
// Like the live accumulators, the copy is two-phase (allocate outside the
// mutex, memcpy inside — see stateShell), so /sums requests racing a
// Rebuild block it only for the flat byte moves. The pool's bootstrap
// configuration is adopted from the workers and can change between
// Rebuilds; if it changes between the shape peek and the copy, the export
// re-peeks and retries with a matching shell.
func (p *Pool) Export() (*State, error) {
	for {
		p.mu.Lock()
		repCfg := p.repCfg
		repPairs := 0
		if p.reps != nil {
			repPairs = p.reps.PairCount()
		}
		p.mu.Unlock()

		cfg := p.cfg
		cfg.Replicates = repCfg
		sh, err := newStateShell(cfg, repCfg.Enabled(), repPairs)
		if err != nil {
			return nil, err
		}

		p.mu.Lock()
		if p.repCfg != repCfg {
			p.mu.Unlock()
			continue // a Rebuild swapped the bootstrap shape; re-size the shell
		}
		err = sh.copyFrom(p.sums, p.reps, p.gen.Load(), p.distinct, p.psi1, p.psiInv, p.collisions)
		p.mu.Unlock()
		if err != nil {
			panic(err)
		}
		return sh.st, nil
	}
}
