package stream

import (
	"math"
	"sync"
	"testing"

	"repro/internal/randx"
	"repro/internal/sample"
)

// TestShardedRequiresStarAndShards checks the constructor guards.
func TestShardedRequiresStarAndShards(t *testing.T) {
	if _, err := NewShardedAccumulator(Config{K: 3, Star: false}, 4); err == nil {
		t.Fatal("expected error for induced sharded accumulator")
	}
	if _, err := NewShardedAccumulator(Config{K: 3, Star: true}, 0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
	if _, err := NewShardedAccumulator(Config{K: 0, Star: true}, 2); err == nil {
		t.Fatal("expected error for K = 0")
	}
	sa, err := NewShardedAccumulator(Config{K: 3, Star: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Shards() != 4 {
		t.Fatalf("Shards() = %d", sa.Shards())
	}
	if _, err := sa.Snapshot(); err == nil {
		t.Fatal("expected error snapshotting an empty sharded accumulator")
	}
}

// TestShardedMatchesSingleConcurrent is the tentpole property test: many
// goroutines ingest interleaved shards of a star stream into a
// ShardedAccumulator (mixing Ingest and IngestBatch) while snapshotters
// poll; the final estimate, draw/distinct counts, and population estimate
// must match the single-lock accumulator fed the same records. Run under
// -race.
func TestShardedMatchesSingleConcurrent(t *testing.T) {
	g := testGraph(t)
	N := float64(g.N())
	s, err := sample.UIS{}.Sample(randx.New(77), g, 8000)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]sample.NodeObservation, s.Len())
	for i, v := range s.Nodes {
		so, err := sample.NewStreamObserver(g, true)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = so.Observe(v, s.Weight(i))
	}
	single, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: N})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.IngestBatch(recs); err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedAccumulator(Config{K: g.NumCategories(), Star: true, N: N}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []sample.NodeObservation
			for i := w; i < len(recs); i += workers {
				if i%7 == 0 {
					if err := sharded.Ingest(recs[i]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				batch = append(batch, recs[i])
				if len(batch) == 25 {
					if _, err := sharded.IngestBatch(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := sharded.IngestBatch(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap, err := sharded.Snapshot(); err == nil {
				if snap.Draws > len(recs) {
					t.Errorf("snapshot draws %d exceeds stream length", snap.Draws)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if t.Failed() {
		return
	}
	if sharded.Draws() != single.Draws() || sharded.Distinct() != single.Distinct() {
		t.Fatalf("sharded draws/distinct = %d/%d, single = %d/%d",
			sharded.Draws(), sharded.Distinct(), single.Draws(), single.Distinct())
	}
	want, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > 1e-9 {
		t.Fatalf("sharded size mismatch: %g", d)
	}
	if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > 1e-9 {
		t.Fatalf("sharded weight mismatch: %g", d)
	}
	if d := maxRelDiff(got.Within, want.Within); d > 1e-9 {
		t.Fatalf("sharded within mismatch: %g", d)
	}
	if d := math.Abs(got.PopEstimate-want.PopEstimate) / want.PopEstimate; d > 1e-9 {
		t.Fatalf("sharded pop estimate %g, single %g", got.PopEstimate, want.PopEstimate)
	}
}

// TestShardedBatchPrefixSemantics checks that the sharded IngestBatch keeps
// the single-lock accumulator's retry contract: on error, exactly the
// leading records before the offender are applied, whatever shard each
// landed in.
func TestShardedBatchPrefixSemantics(t *testing.T) {
	sa, err := NewShardedAccumulator(Config{K: 2, Star: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := []sample.NodeObservation{
		{Node: 10, Cat: 0, Deg: 1, NbrCat: []int32{1}, NbrCnt: []float64{1}},
		{Node: 11, Cat: 1, Deg: 1, NbrCat: []int32{0}, NbrCnt: []float64{1}},
		{Node: 12, Cat: 9}, // invalid category
		{Node: 13, Cat: 0},
	}
	n, err := sa.IngestBatch(recs)
	if err == nil {
		t.Fatal("expected error on invalid record")
	}
	if n != 2 {
		t.Fatalf("applied %d records, want the 2-record prefix", n)
	}
	if sa.Draws() != 2 {
		t.Fatalf("draws = %d after failed batch, want 2", sa.Draws())
	}
	// The documented retry: resend only the remainder with the offender
	// fixed.
	recs[2].Cat = 1
	if _, err := sa.IngestBatch(recs[2:]); err != nil {
		t.Fatal(err)
	}
	if sa.Draws() != 4 {
		t.Fatalf("draws = %d after retry, want 4", sa.Draws())
	}
}

// TestShardedConvergenceAndSeq checks that sharded snapshots number from 1,
// start at +Inf deltas, and then report finite movement.
func TestShardedConvergenceAndSeq(t *testing.T) {
	g := testGraph(t)
	s, err := sample.UIS{}.Sample(randx.New(5), g, 4000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewShardedAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes[:2000] {
		if err := sa.Ingest(so.Observe(v, s.Weight(i))); err != nil {
			t.Fatal(err)
		}
	}
	first, err := sa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || !math.IsInf(first.Converge.SizeDelta, 1) || first.Converge.DrawsSince != 2000 {
		t.Fatalf("first sharded snapshot: %+v", first.Converge)
	}
	for i, v := range s.Nodes[2000:] {
		if err := sa.Ingest(so.Observe(v, s.Weight(2000+i))); err != nil {
			t.Fatal(err)
		}
	}
	second, err := sa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 2 || second.Converge.DrawsSince != 2000 {
		t.Fatalf("second sharded snapshot: seq=%d %+v", second.Seq, second.Converge)
	}
	if math.IsInf(second.Converge.SizeDelta, 1) || second.Converge.SizeDelta < 0 {
		t.Fatalf("second snapshot delta not finite: %+v", second.Converge)
	}
}

// TestShardedSingleShardMatchesAccumulator pins the degenerate P = 1 case
// to the single-lock accumulator exactly (identical routing, one shard).
func TestShardedSingleShardMatchesAccumulator(t *testing.T) {
	g := testGraph(t)
	s, err := sample.NewRW(50).Sample(randx.New(8), g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sample.NewStreamObserver(g, true)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewShardedAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())}, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(Config{K: g.NumCategories(), Star: true, N: float64(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Nodes {
		rec := so.Observe(v, s.Weight(i))
		if err := sa.Ingest(rec); err != nil {
			t.Fatal(err)
		}
		if err := acc.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(got.Result.Sizes, want.Result.Sizes); d > 1e-12 {
		t.Fatalf("1-shard size mismatch: %g", d)
	}
	if d := weightsMaxDiff(got.Result.Weights, want.Result.Weights); d > 1e-12 {
		t.Fatalf("1-shard weight mismatch: %g", d)
	}
}

// TestShardedBatchCountExactUnderConcurrency pins the documented concurrent
// IngestBatch guarantee: the count each caller gets back is exact for its
// own batch — on success all its records are durable, on error exactly the
// returned prefix is — so the total draw count equals the sum of the
// returned counts even when batches race and conflict. Run under -race.
func TestShardedBatchCountExactUnderConcurrency(t *testing.T) {
	sa, err := NewShardedAccumulator(Config{K: 2, Star: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every batch re-draws a shared node set, and half the batches carry a
	// conflicting re-delivery of node 7: whichever record lands a node
	// first fixes its weight, so conflicting batches fail mid-way with a
	// prefix count. (Weight 1 always wins the race for node 7: every
	// batch's weight-1 record of node 7 precedes any weight-3 record in
	// batch order, so each conflicting batch deterministically stops at
	// its conflicting index.)
	const callers = 8
	batches := make([][]sample.NodeObservation, callers)
	for c := range batches {
		w := 1.0
		for v := int32(0); v < 40; v++ {
			rec := sample.NodeObservation{
				Node: v, Weight: w, Cat: v % 2,
				Deg: 2, NbrCat: []int32{(v + 1) % 2}, NbrCnt: []float64{2},
			}
			batches[c] = append(batches[c], rec)
		}
		if c%2 == 1 {
			// Conflicting callers re-deliver node 7 with weight 3 at a
			// fixed position; first-writer-wins makes at most one weight
			// stick for node 7 across all batches.
			batches[c][20] = sample.NodeObservation{
				Node: 7, Weight: 3, Cat: 1,
				Deg: 2, NbrCat: []int32{0}, NbrCnt: []float64{2},
			}
		}
	}
	counts := make([]int, callers)
	var wg sync.WaitGroup
	for c := range batches {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n, _ := sa.IngestBatch(batches[c])
			counts[c] = n
		}(c)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	if sa.Draws() != total {
		t.Fatalf("Draws() = %d, want the sum of returned batch counts %d", sa.Draws(), total)
	}
	if uint64(total) != sa.Gen() {
		t.Fatalf("Gen() = %d, want %d", sa.Gen(), total)
	}
	// Every conflicting batch must have stopped at its offender.
	if total == callers*40 {
		t.Fatal("no batch reported a conflict; the test graph is miswired")
	}
	// The accumulator still snapshots cleanly from the applied records.
	if _, err := sa.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestGenMonotoneNonTorn checks the Gen/Draws contract on both
// accumulators: the generation advances once per applied record, rejected
// records leave it unchanged, and concurrent readers only ever observe
// non-decreasing values (an atomic counter cannot tear the way a per-shard
// sum can). Run under -race.
func TestGenMonotoneNonTorn(t *testing.T) {
	single, err := NewAccumulator(Config{K: 2, Star: true})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedAccumulator(Config{K: 2, Star: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, acc := range map[string]Ingester{"single": single, "sharded": sharded} {
		if acc.Gen() != 0 {
			t.Fatalf("%s: fresh Gen() = %d", name, acc.Gen())
		}
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					g := acc.Gen()
					if g < last {
						t.Errorf("%s: Gen went backwards: %d after %d", name, g, last)
						return
					}
					last = g
				}
			}()
		}
		var writers sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for v := int32(w * 100); v < int32(w*100+50); v++ {
					rec := sample.NodeObservation{Node: v, Cat: v % 2, Deg: 1, NbrCat: []int32{0}, NbrCnt: []float64{1}}
					if err := acc.Ingest(rec); err != nil {
						t.Errorf("%s: ingest: %v", name, err)
						return
					}
				}
			}(w)
		}
		writers.Wait()
		close(stop)
		readers.Wait()
		if acc.Gen() != 200 || acc.Draws() != 200 {
			t.Fatalf("%s: Gen=%d Draws=%d, want 200 each", name, acc.Gen(), acc.Draws())
		}
		// A rejected record must not advance the generation.
		if err := acc.Ingest(sample.NodeObservation{Node: 1, Cat: 9}); err == nil {
			t.Fatalf("%s: invalid record accepted", name)
		}
		if acc.Gen() != 200 {
			t.Fatalf("%s: rejected record advanced Gen to %d", name, acc.Gen())
		}
	}
}
