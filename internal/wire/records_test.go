package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sample"
)

// recBatch is a batch exercising every record shape the format carries:
// draw-only, full star, degree-only star, omitted-degree star, induced
// peers, uncategorized draws, inherited weights, and negative node ids.
func recBatch() []sample.NodeObservation {
	return []sample.NodeObservation{
		{Node: 1, Cat: 0, Weight: 1.5},
		{Node: 2, Cat: 1, Weight: 2, Deg: 5, NbrCat: []int32{0, 2}, NbrCnt: []float64{3, 2}},
		{Node: 3, Cat: 2, Weight: 0.25, Deg: 7},
		{Node: 4, Cat: 0, NbrCat: []int32{1}, NbrCnt: []float64{4}},
		{Node: 5, Cat: 1, Weight: 1, Peers: []int32{1, 3, -9}},
		{Node: -6, Cat: -1, Weight: 0},
		{Node: 7, Cat: 3, Weight: 0.5, Deg: 2.5, NbrCat: []int32{0}, NbrCnt: []float64{2.5}, Peers: []int32{2}},
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := recBatch()
	enc, err := EncodeRecords(recs)
	if err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	dec, err := DecodeRecords(enc)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if !reflect.DeepEqual(dec, recs) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", dec, recs)
	}
	re, err := EncodeRecords(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs from original (%d vs %d bytes)", len(re), len(enc))
	}
}

func TestRecordsRoundTripEmpty(t *testing.T) {
	enc, err := EncodeRecords(nil)
	if err != nil {
		t.Fatalf("EncodeRecords(nil): %v", err)
	}
	if len(enc) != recHeaderSize {
		t.Fatalf("empty batch is %d bytes, want the bare %d-byte header", len(enc), recHeaderSize)
	}
	dec, err := DecodeRecords(enc)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty batch decoded to %d records", len(dec))
	}
}

// TestRecordsBitExactFloats pins the raw-bits contract: -0.0 degrees and
// weights — inexpressible distinctly in JSON but representable in the
// struct — survive the round trip bit for bit.
func TestRecordsBitExactFloats(t *testing.T) {
	negZero := math.Copysign(0, -1)
	recs := []sample.NodeObservation{
		{Node: 1, Cat: 0, Weight: negZero, Deg: negZero},
	}
	enc, err := EncodeRecords(recs)
	if err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	dec, err := DecodeRecords(enc)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if math.Float64bits(dec[0].Deg) != math.Float64bits(negZero) {
		t.Fatalf("deg bits %#x, want %#x", math.Float64bits(dec[0].Deg), math.Float64bits(negZero))
	}
	if math.Float64bits(dec[0].Weight) != math.Float64bits(negZero) {
		t.Fatalf("weight bits %#x, want %#x", math.Float64bits(dec[0].Weight), math.Float64bits(negZero))
	}
	re, _ := EncodeRecords(dec)
	if !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs")
	}
}

// TestRecordIterScratchReuse pins the aliasing contract: the slices Next
// fills are overwritten by the following Next, and a Reset lets one
// iterator decode many frames without reallocating.
func TestRecordIterScratchReuse(t *testing.T) {
	recs := []sample.NodeObservation{
		{Node: 1, Cat: 0, Weight: 1, Deg: 3, NbrCat: []int32{0, 1}, NbrCnt: []float64{2, 1}},
		{Node: 2, Cat: 1, Weight: 1, Deg: 4, NbrCat: []int32{2, 3}, NbrCnt: []float64{3, 1}},
	}
	enc, err := EncodeRecords(recs)
	if err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	it, err := NewRecordIter(enc)
	if err != nil {
		t.Fatalf("NewRecordIter: %v", err)
	}
	if it.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", it.Len())
	}
	var first, second sample.NodeObservation
	if !it.Next(&first) {
		t.Fatal("Next returned false on record 0")
	}
	held := first.NbrCat // aliases scratch
	if !it.Next(&second) {
		t.Fatal("Next returned false on record 1")
	}
	if &held[0] != &second.NbrCat[0] {
		t.Fatal("scratch was reallocated between records of equal shape")
	}
	if held[0] != 2 {
		t.Fatalf("scratch now holds record 1's data: got %d, want 2", held[0])
	}
	var sink sample.NodeObservation
	if it.Next(&sink) {
		t.Fatal("Next returned true past the end")
	}
	if err := it.Reset(enc); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if !it.Next(&first) || first.Node != 1 {
		t.Fatalf("after Reset, first record is %+v", first)
	}
}

func TestEncodeRecordsRejectsMismatchedStarLists(t *testing.T) {
	_, err := EncodeRecords([]sample.NodeObservation{
		{Node: 1, Cat: 0, NbrCat: []int32{0, 1}, NbrCnt: []float64{2}},
	})
	if err == nil || !strings.Contains(err.Error(), "neighbor categories") {
		t.Fatalf("err = %v, want a neighbor list length error", err)
	}
}

// recCorrupt applies fn to a copy of enc and, unless the mutation touched
// the CRC field itself, refreshes the stored CRC so the test exercises the
// structural check rather than the checksum.
func recCorrupt(enc []byte, fixCRC bool, fn func([]byte)) []byte {
	c := append([]byte(nil), enc...)
	fn(c)
	if fixCRC && len(c) >= recHeaderSize {
		binary.LittleEndian.PutUint32(c[20:24], crc32.ChecksumIEEE(c[recHeaderSize:]))
	}
	return c
}

func TestDecodeRecordsRejectsCorruption(t *testing.T) {
	enc, err := EncodeRecords(recBatch())
	if err != nil {
		t.Fatalf("EncodeRecords: %v", err)
	}
	cases := []struct {
		name   string
		fixCRC bool
		fn     func([]byte)
		grow   func([]byte) []byte // used instead of fn when resizing
	}{
		{name: "bad magic", fixCRC: false, fn: func(b []byte) { b[0] = 'X' }},
		{name: "version zero", fixCRC: true, fn: func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], 0) }},
		{name: "future version", fixCRC: true, fn: func(b []byte) { binary.LittleEndian.PutUint32(b[8:12], RecordsVersion+1) }},
		{name: "flipped payload byte", fixCRC: false, fn: func(b []byte) { b[recHeaderSize] ^= 0x40 }},
		{name: "count too high", fixCRC: true, fn: func(b []byte) {
			n := binary.LittleEndian.Uint32(b[12:16])
			binary.LittleEndian.PutUint32(b[12:16], n+1)
		}},
		{name: "count too low", fixCRC: true, fn: func(b []byte) {
			n := binary.LittleEndian.Uint32(b[12:16])
			binary.LittleEndian.PutUint32(b[12:16], n-1)
		}},
		{name: "payloadLen shrunk", fixCRC: true, fn: func(b []byte) {
			n := binary.LittleEndian.Uint32(b[16:20])
			binary.LittleEndian.PutUint32(b[16:20], n-1)
		}},
		{name: "unknown flag bit", fixCRC: true, fn: func(b []byte) {
			// Record 0 is draw-only; its flags byte is the 17th payload byte.
			b[recHeaderSize+recMinSize-1] |= 1 << 7
		}},
		{name: "truncated frame", grow: func(b []byte) []byte { return b[:len(b)-3] }},
		{name: "trailing bytes", grow: func(b []byte) []byte { return append(append([]byte(nil), b...), 0xEE) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c []byte
			if tc.grow != nil {
				c = tc.grow(append([]byte(nil), enc...))
			} else {
				c = recCorrupt(enc, tc.fixCRC, tc.fn)
			}
			if _, err := DecodeRecords(c); err == nil {
				t.Fatal("corrupted batch decoded without error")
			}
		})
	}
}

// TestDecodeRecordsRejectsNonCanonical hand-builds frames that are
// well-formed at the byte level but violate the canonical-form rules the
// bijection depends on.
func TestDecodeRecordsRejectsNonCanonical(t *testing.T) {
	frame := func(payload []byte, count uint32) []byte {
		b := make([]byte, recHeaderSize+len(payload))
		copy(b[0:8], recMagic)
		binary.LittleEndian.PutUint32(b[8:12], RecordsVersion)
		binary.LittleEndian.PutUint32(b[12:16], count)
		binary.LittleEndian.PutUint32(b[16:20], uint32(len(payload)))
		copy(b[recHeaderSize:], payload)
		binary.LittleEndian.PutUint32(b[20:24], crc32.ChecksumIEEE(payload))
		return b
	}
	fixed := func(flags byte) []byte {
		p := make([]byte, recMinSize)
		binary.LittleEndian.PutUint32(p[0:4], 1)      // node
		binary.LittleEndian.PutUint32(p[4:8], 0)      // cat
		binary.LittleEndian.PutUint64(p[8:16], 1<<62) // some weight bits
		p[16] = flags
		return p
	}

	t.Run("empty star section", func(t *testing.T) {
		p := append(fixed(recFlagStar), make([]byte, 12)...) // deg bits 0, nbrs 0
		if _, err := DecodeRecords(frame(p, 1)); err == nil || !strings.Contains(err.Error(), "empty star section") {
			t.Fatalf("err = %v, want empty-star rejection", err)
		}
	})
	t.Run("empty peer section", func(t *testing.T) {
		p := append(fixed(recFlagPeers), make([]byte, 4)...) // n = 0
		if _, err := DecodeRecords(frame(p, 1)); err == nil || !strings.Contains(err.Error(), "empty peer section") {
			t.Fatalf("err = %v, want empty-peers rejection", err)
		}
	})
}
