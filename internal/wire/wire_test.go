package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/stream"
	"repro/internal/uncert"
)

// starRecord synthesizes a deterministic star observation for a node: the
// category, weight and neighborhood are pure functions of the node id, so
// re-draws of the same node are always consistent with its first record.
func starRecord(node int32, k int) sample.NodeObservation {
	rec := sample.NodeObservation{
		Node:   node,
		Weight: 1 + float64(node%7),
		Cat:    node % int32(k),
	}
	if node%11 == 0 {
		rec.Cat = graph.None
	}
	var deg float64
	for c := int32(0); c < int32(k); c++ {
		if (node+c)%3 == 0 {
			cnt := float64(1 + (node+2*c)%4)
			rec.NbrCat = append(rec.NbrCat, c)
			rec.NbrCnt = append(rec.NbrCnt, cnt)
			deg += cnt
		}
	}
	rec.Deg = deg + float64(node%2) // the odd nodes have an uncategorized neighbor
	return rec
}

// inducedRecord synthesizes an induced observation; peers reference only
// lower node ids, so a stream that introduces nodes in increasing order
// always names already-observed peers.
func inducedRecord(node int32, k int) sample.NodeObservation {
	rec := sample.NodeObservation{
		Node:   node,
		Weight: 1 + float64(node%5),
		Cat:    node % int32(k),
	}
	if node%13 == 0 {
		rec.Cat = graph.None
	}
	for p := int32(0); p < node; p++ {
		if (node*31+p)%4 == 0 {
			rec.Peers = append(rec.Peers, p)
		}
	}
	return rec
}

// fillAccumulator ingests a deterministic stream with repeated draws
// (collisions) into a fresh accumulator and returns its export.
func fillAccumulator(t *testing.T, star bool, boot uncert.Config) *stream.State {
	t.Helper()
	const k = 5
	acc, err := stream.NewAccumulator(stream.Config{K: k, Star: star, N: 500, Replicates: boot})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		node := int32(i % 60) // nodes enter in increasing order, then repeat
		var rec sample.NodeObservation
		if star {
			rec = starRecord(node, k)
		} else {
			rec = inducedRecord(node, k)
		}
		if err := acc.Ingest(rec); err != nil {
			t.Fatalf("ingest record %d: %v", i, err)
		}
	}
	st, err := acc.Export()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// checkRoundTrip encodes a state, decodes it, and verifies the bijection
// both ways: the decoded state re-encodes byte-identically, and its decoded
// sufficient statistics are bit-for-bit the originals.
func checkRoundTrip(t *testing.T, st *stream.State) []byte {
	t.Helper()
	enc, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encode of decoded state differs from original encoding (%d vs %d bytes)", len(re), len(enc))
	}
	if dec.K != st.K || dec.Star != st.Star || dec.Gen != st.Gen || dec.Distinct != st.Distinct {
		t.Fatalf("decoded header (k=%d star=%v gen=%d distinct=%d) != original (k=%d star=%v gen=%d distinct=%d)",
			dec.K, dec.Star, dec.Gen, dec.Distinct, st.K, st.Star, st.Gen, st.Distinct)
	}
	if dec.Psi1 != st.Psi1 || dec.PsiInv != st.PsiInv || dec.Collisions != st.Collisions {
		t.Fatal("decoded collision scalars differ from original")
	}
	if dec.Sums.Draws != st.Sums.Draws || dec.Sums.TotalRew != st.Sums.TotalRew ||
		dec.Sums.RewSq != st.Sums.RewSq || dec.Sums.DegNum != st.Sums.DegNum {
		t.Fatal("decoded scalar sums differ from original")
	}
	for c := 0; c < st.K; c++ {
		if dec.Sums.Rew[c] != st.Sums.Rew[c] || dec.Sums.DrawsA[c] != st.Sums.DrawsA[c] ||
			dec.Sums.Rew2[c] != st.Sums.Rew2[c] || dec.Sums.RewSqA[c] != st.Sums.RewSqA[c] ||
			dec.Sums.WithinNum[c] != st.Sums.WithinNum[c] {
			t.Fatalf("decoded per-category sums differ at category %d", c)
		}
	}
	if dec.Sums.PairNum.Len() != st.Sums.PairNum.Len() {
		t.Fatalf("decoded pair table has %d entries, original %d", dec.Sums.PairNum.Len(), st.Sums.PairNum.Len())
	}
	st.Sums.PairNum.ForEach(func(a, b int32, w float64) {
		if got := dec.Sums.PairNum.Get(a, b); got != w {
			t.Fatalf("pair {%d,%d}: decoded %v, want %v", a, b, got, w)
		}
	})
	if (dec.Reps == nil) != (st.Reps == nil) {
		t.Fatalf("decoded replicates presence %v, original %v", dec.Reps != nil, st.Reps != nil)
	}
	if st.Reps != nil {
		or, dr := st.Reps.Raw(), dec.Reps.Raw()
		if dr.Cfg != or.Cfg {
			t.Fatalf("decoded replicate config %+v, original %+v", dr.Cfg, or.Cfg)
		}
		for name, pair := range map[string][2][]float64{
			"draws": {or.Draws, dr.Draws}, "total_rew": {or.TotalRew, dr.TotalRew},
			"rew_sq": {or.RewSq, dr.RewSq}, "psi1": {or.Psi1, dr.Psi1},
			"psi_inv": {or.PsiInv, dr.PsiInv}, "coll": {or.Coll, dr.Coll},
			"deg_num": {or.DegNum, dr.DegNum}, "rew": {or.Rew, dr.Rew},
			"draws_a": {or.DrawsA, dr.DrawsA}, "rew2": {or.Rew2, dr.Rew2},
			"rew_sq_a": {or.RewSqA, dr.RewSqA}, "within_num": {or.WithinNum, dr.WithinNum},
			"deg_num_a": {or.DegNumA, dr.DegNumA}, "nbr_num": {or.NbrNum, dr.NbrNum},
		} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("replicate vector %s: decoded length %d, original %d", name, len(pair[1]), len(pair[0]))
			}
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("replicate vector %s differs at %d", name, i)
				}
			}
		}
		if len(or.Pairs) != len(dr.Pairs) {
			t.Fatalf("replicate pair table: decoded %d entries, original %d", len(dr.Pairs), len(or.Pairs))
		}
		for key, ov := range or.Pairs {
			dv, ok := dr.Pairs[key]
			if !ok {
				t.Fatalf("replicate pair {%d,%d} missing after decode", key[0], key[1])
			}
			for i := range ov {
				if ov[i] != dv[i] {
					t.Fatalf("replicate pair {%d,%d} differs at replicate %d", key[0], key[1], i)
				}
			}
		}
	}
	return enc
}

func TestRoundTripStarBootstrap(t *testing.T) {
	st := fillAccumulator(t, true, uncert.Config{B: 30, Seed: 7})
	if st.Reps == nil {
		t.Fatal("expected replicates on the exported state")
	}
	checkRoundTrip(t, st)
}

func TestRoundTripStarNoBootstrap(t *testing.T) {
	st := fillAccumulator(t, true, uncert.Config{})
	if st.Reps != nil {
		t.Fatal("unexpected replicates on the exported state")
	}
	checkRoundTrip(t, st)
}

func TestRoundTripInducedBootstrap(t *testing.T) {
	st := fillAccumulator(t, false, uncert.Config{B: 20, Seed: 3})
	checkRoundTrip(t, st)
}

func TestRoundTripEmptyAccumulator(t *testing.T) {
	acc, err := stream.NewAccumulator(stream.Config{K: 3, Star: true, Replicates: uncert.Config{B: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := acc.Export()
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, st)
}

// TestDecodedStateMergesExactly is the semantic half of the round trip: a
// coordinator pool rebuilt from the decoded state must serve bit-identical
// estimates and CIs to the worker that exported it.
func TestDecodedStateMergesExactly(t *testing.T) {
	const k = 5
	acc, err := stream.NewAccumulator(stream.Config{K: k, Star: true, N: 500, Replicates: uncert.Config{B: 30, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := acc.Ingest(starRecord(int32(i%60), k)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := acc.Export()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := stream.NewPool(stream.Config{K: k, Star: true, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Rebuild([]*stream.State{dec}); err != nil {
		t.Fatal(err)
	}
	want, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		if got.Result.Sizes[c] != want.Result.Sizes[c] || got.Within[c] != want.Within[c] {
			t.Fatalf("category %d: pool (size %v, within %v) != worker (size %v, within %v)",
				c, got.Result.Sizes[c], got.Within[c], want.Result.Sizes[c], want.Within[c])
		}
	}
	if got.PopEstimate != want.PopEstimate && !(math.IsNaN(got.PopEstimate) && math.IsNaN(want.PopEstimate)) {
		t.Fatalf("pool pop estimate %v != worker %v", got.PopEstimate, want.PopEstimate)
	}
	if got.Boot == nil || want.Boot == nil {
		t.Fatal("expected bootstrap snapshots on both sides")
	}
	for c := 0; c < k; c++ {
		gs, ws := got.Boot.SizeCI(c, 0.95), want.Boot.SizeCI(c, 0.95)
		gw, ww := got.Boot.WithinCI(c, 0.95), want.Boot.WithinCI(c, 0.95)
		if gs != ws || gw != ww {
			t.Fatalf("category %d: pool CI %+v/%+v != worker %+v/%+v", c, gs, gw, ws, ww)
		}
	}
	if got.Boot.PopCI(0.95) != want.Boot.PopCI(0.95) {
		t.Fatalf("pool pop CI %+v != worker %+v", got.Boot.PopCI(0.95), want.Boot.PopCI(0.95))
	}
}

// corrupt returns a copy of enc with fn applied.
func corrupt(enc []byte, fn func([]byte) []byte) []byte {
	cp := append([]byte(nil), enc...)
	return fn(cp)
}

func TestDecodeRejectsCorruption(t *testing.T) {
	withBoot := checkRoundTrip(t, fillAccumulator(t, true, uncert.Config{B: 8, Seed: 2}))
	noBoot := checkRoundTrip(t, fillAccumulator(t, true, uncert.Config{}))

	cases := []struct {
		name    string
		data    []byte
		wantSub string // substring the error must contain ("" = any error)
	}{
		{"empty", nil, "truncated"},
		{"header_truncated", withBoot[:10], "truncated"},
		{"header_almost", withBoot[:63], "truncated"},
		{"body_truncated", withBoot[:len(withBoot)-1], "bytes"},
		{"header_only", withBoot[:64], "bytes"},
		{"trailing_garbage", append(append([]byte(nil), withBoot...), 0xAA), "bytes"},
		{"wrong_magic", corrupt(withBoot, func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"version_zero", corrupt(withBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}), "version 0"},
		{"future_version", corrupt(withBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		}), "version 99"},
		{"unknown_flag", corrupt(withBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], binary.LittleEndian.Uint32(b[12:])|0x80)
			return b
		}), "flag"},
		{"zero_k", corrupt(withBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0)
			return b
		}), "categories"},
		{"replicates_flag_without_b", corrupt(noBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], binary.LittleEndian.Uint32(b[12:])|2)
			return b
		}), "replicates"},
		{"b_without_replicates_flag", corrupt(noBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 77)
			return b
		}), "replicates flag"},
		{"absurd_pair_count", corrupt(withBoot, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[40:], 1<<30)
			return b
		}), "pair"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if err == nil {
				t.Fatal("Decode accepted corrupt input")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeRejectsNonCanonicalPairs flips the order of the first two
// primary pair entries and degrades one to a diagonal — both must fail, or
// the bijection (and with it byte-level idempotence) is broken.
func TestDecodeRejectsNonCanonicalPairs(t *testing.T) {
	enc := checkRoundTrip(t, fillAccumulator(t, true, uncert.Config{}))
	sumsPairs := binary.LittleEndian.Uint32(enc[40:44])
	if sumsPairs < 2 {
		t.Fatalf("need ≥ 2 pair entries for this test, have %d", sumsPairs)
	}
	k := int(binary.LittleEndian.Uint32(enc[16:20]))
	pairOff := 64 + 8*8 + 7*k*8 // star layout: 7 per-category arrays

	swapped := corrupt(enc, func(b []byte) []byte {
		e0 := append([]byte(nil), b[pairOff:pairOff+16]...)
		copy(b[pairOff:], b[pairOff+16:pairOff+32])
		copy(b[pairOff+16:], e0)
		return b
	})
	if _, err := Decode(swapped); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("swapped pair entries: got %v, want out-of-order error", err)
	}

	diagonal := corrupt(enc, func(b []byte) []byte {
		a := binary.LittleEndian.Uint32(b[pairOff:])
		binary.LittleEndian.PutUint32(b[pairOff+4:], a)
		return b
	})
	if _, err := Decode(diagonal); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("diagonal pair entry: got %v, want canonical-form error", err)
	}
}
