package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sample"
	"repro/internal/stream"
	"repro/internal/uncert"
)

func ckpObs(i int) sample.NodeObservation {
	node := int32(i % 23)
	c := node % 4
	obs := sample.NodeObservation{Node: node, Cat: c, Weight: 1 + float64(node%5)/8}
	if i%3 != 0 {
		obs.Deg = float64(2 + node%6)
		obs.NbrCat = []int32{(c + 1) % 4}
		obs.NbrCnt = []float64{2}
	}
	return obs
}

func buildCheckpoint(t *testing.T, name string, records int) (*Checkpoint, stream.Config) {
	t.Helper()
	cfg := stream.Config{K: 4, Star: true, Replicates: uncert.Config{B: 16, Seed: 5}}
	acc, err := stream.NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := acc.Ingest(ckpObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := acc.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Name:   name,
		Config: []byte(`{"k":4,"star":true}`),
		Gen:    fs.State.Gen,
		State:  fs,
	}, cfg
}

// TestCheckpointRoundTrip pins Decode∘Encode as the identity on checkpoints,
// and the byte-stability invariant the append-only file format relies on:
// checkpoint → restore → checkpoint reproduces the frame byte for byte.
func TestCheckpointRoundTrip(t *testing.T) {
	cp, cfg := buildCheckpoint(t, "alpha", 90)
	frame, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeCheckpoint(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
	}
	if got.Name != cp.Name || got.Gen != cp.Gen || !bytes.Equal(got.Config, cp.Config) {
		t.Fatalf("frame fields round-tripped to %q/%d", got.Name, got.Gen)
	}

	acc, err := stream.RestoreAccumulator(cfg, got.State)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := acc.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := EncodeCheckpoint(&Checkpoint{Name: cp.Name, Config: cp.Config, Gen: fs2.State.Gen, State: fs2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatalf("checkpoint → restore → checkpoint is not byte-stable (%d vs %d bytes)", len(frame), len(frame2))
	}
}

// TestCheckpointRoundTripInduced covers the induced-scenario node payload
// (peer lists, no star data, no replicates).
func TestCheckpointRoundTripInduced(t *testing.T) {
	cfg := stream.Config{K: 3, Star: false}
	acc, err := stream.NewAccumulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := []sample.NodeObservation{
		{Node: 1, Cat: 0},
		{Node: 2, Cat: 1, Peers: []int32{1}},
		{Node: 3, Cat: 2, Peers: []int32{1, 2}},
		{Node: 1, Cat: 0, Peers: []int32{3}},
	}
	for _, r := range recs {
		if err := acc.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := acc.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeCheckpoint(&Checkpoint{Name: "induced", Gen: fs.State.Gen, State: fs})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeCheckpoint(frame)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := stream.RestoreAccumulator(cfg, got.State)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := restored.ExportFull()
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := EncodeCheckpoint(&Checkpoint{Name: "induced", Gen: fs2.State.Gen, State: fs2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatal("induced checkpoint is not byte-stable through restore")
	}
}

// TestLastCheckpointRecovery is the crash-safety contract of the append-only
// checkpoint file: whatever happens to the final frame — truncated at any
// byte, checksum corrupted, or the whole file empty/garbage — LastCheckpoint
// returns the newest frame that still verifies, never an error.
func TestLastCheckpointRecovery(t *testing.T) {
	var file []byte
	var frames [][]byte
	for gens := 30; gens <= 90; gens += 30 {
		cp, _ := buildCheckpoint(t, "alpha", gens)
		frame, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		file = append(file, frame...)
	}

	t.Run("intact", func(t *testing.T) {
		cp, tail := LastCheckpoint(file)
		if cp == nil || cp.Gen != 90 || tail != 0 {
			t.Fatalf("got gen %v, tail %d; want 90, 0", cp, tail)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if cp, tail := LastCheckpoint(nil); cp != nil || tail != 0 {
			t.Fatalf("empty file: got %v, tail %d", cp, tail)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		junk := bytes.Repeat([]byte{0xa5}, 300)
		if cp, tail := LastCheckpoint(junk); cp != nil || tail != len(junk) {
			t.Fatalf("garbage file: got %v, tail %d", cp, tail)
		}
	})
	t.Run("truncated-final-frame", func(t *testing.T) {
		prefix := len(file) - len(frames[2])
		for _, cut := range []int{1, ckpHeaderSize - 1, ckpHeaderSize, ckpHeaderSize + 7, len(frames[2]) / 2, len(frames[2]) - 1} {
			trunc := file[:prefix+cut]
			cp, tail := LastCheckpoint(trunc)
			if cp == nil || cp.Gen != 60 {
				t.Fatalf("cut at %d: recovered %v, want the gen-60 frame", cut, cp)
			}
			if tail != cut {
				t.Fatalf("cut at %d: ignored tail %d", cut, tail)
			}
		}
	})
	t.Run("corrupt-crc", func(t *testing.T) {
		bad := append([]byte(nil), file...)
		bad[len(bad)-10] ^= 0xff // flip a payload byte inside the final frame
		cp, tail := LastCheckpoint(bad)
		if cp == nil || cp.Gen != 60 {
			t.Fatalf("recovered %v, want the gen-60 frame", cp)
		}
		if tail != len(frames[2]) {
			t.Fatalf("ignored tail %d, want the whole %d-byte final frame", tail, len(frames[2]))
		}
	})
	t.Run("corrupt-header-crc-field", func(t *testing.T) {
		bad := append([]byte(nil), file...)
		off := len(file) - len(frames[2]) + 16
		bad[off] ^= 0x01
		if cp, _ := LastCheckpoint(bad); cp == nil || cp.Gen != 60 {
			t.Fatalf("recovered %v, want the gen-60 frame", cp)
		}
	})
	t.Run("every-truncation-point", func(t *testing.T) {
		// Property: for ANY prefix of the file, recovery yields exactly the
		// frames wholly contained in the prefix — the newest complete one,
		// with the partial remainder counted as tail.
		bounds := []int{len(frames[0]), len(frames[0]) + len(frames[1]), len(file)}
		for cut := 0; cut <= len(file); cut += 97 {
			cp, tail := LastCheckpoint(file[:cut])
			whole := 0
			var wantGen uint64
			for i, b := range bounds {
				if cut >= b {
					whole = b
					wantGen = uint64(30 * (i + 1))
				}
			}
			if tail != cut-whole {
				t.Fatalf("cut %d: tail %d, want %d", cut, tail, cut-whole)
			}
			if whole == 0 {
				if cp != nil {
					t.Fatalf("cut %d: unexpected frame %v", cut, cp)
				}
			} else if cp == nil || cp.Gen != wantGen {
				t.Fatalf("cut %d: recovered %v, want gen %d", cut, cp, wantGen)
			}
		}
	})
}

// TestCheckpointValidation rejects malformed frames outright.
func TestCheckpointValidation(t *testing.T) {
	cp, _ := buildCheckpoint(t, "alpha", 20)
	frame, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"bad-magic":    mut(func(b []byte) { b[0] = 'X' }),
		"bad-version":  mut(func(b []byte) { b[8] = 99 }),
		"reserved-set": mut(func(b []byte) { b[20] = 1 }),
		"short-header": frame[:ckpHeaderSize-2],
	}
	for name, data := range cases {
		if _, _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}
	if _, err := EncodeCheckpoint(&Checkpoint{Name: "", Gen: cp.Gen, State: cp.State}); err == nil {
		t.Error("encode accepted an empty name")
	}
	if _, err := EncodeCheckpoint(&Checkpoint{Name: "x", Gen: cp.Gen + 1, State: cp.State}); err == nil {
		t.Error("encode accepted gen disagreeing with the state")
	}
}

// TestCompactCheckpoints pins the compaction contract: the file is rewritten
// to exactly the bytes of its newest intact frame (torn tail and superseded
// frames dropped), already-compact files are untouched, and files with no
// intact frame are left for recovery rather than destroyed.
func TestCompactCheckpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alpha.ckpt")

	var file []byte
	var frames [][]byte
	for _, records := range []int{30, 60, 90} {
		cp, _ := buildCheckpoint(t, "alpha", records)
		frame, err := EncodeCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		file = append(file, frame...)
	}
	// A torn tail, as a crash mid-append would leave.
	file = append(file, frames[0][:17]...)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, n, tail := ScanCheckpoints(file); n != 3 || tail != 17 {
		t.Fatalf("ScanCheckpoints = %d frames, %d tail; want 3, 17", n, tail)
	}

	dropped, err := CompactCheckpoints(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped %d frames, want 2", dropped)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frames[2]) {
		t.Fatalf("compacted file is %d bytes, want the newest frame's exact %d", len(got), len(frames[2]))
	}
	cp, n, tail := ScanCheckpoints(got)
	if n != 1 || tail != 0 || cp == nil {
		t.Fatalf("after compaction: %d frames, %d tail", n, tail)
	}

	// Idempotent: an already-compact file is untouched.
	if dropped, err = CompactCheckpoints(path); err != nil || dropped != 0 {
		t.Fatalf("second compaction: dropped=%d err=%v", dropped, err)
	}

	// No intact frame: leave the file alone (recovery's problem).
	garbage := filepath.Join(dir, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if dropped, err = CompactCheckpoints(garbage); err != nil || dropped != 0 {
		t.Fatalf("garbage compaction: dropped=%d err=%v", dropped, err)
	}
	if got, _ := os.ReadFile(garbage); string(got) != "not a frame" {
		t.Fatalf("compaction rewrote a file with no intact frame: %q", got)
	}

	if _, err := CompactCheckpoints(filepath.Join(dir, "absent.ckpt")); err == nil {
		t.Fatal("compacting a missing file did not error")
	}
}
