package wire

// Binary ingest records. TOPOREC1 is the high-rate counterpart of the JSON
// body POST /ingest accepts: one CRC-framed batch of sample.NodeObservation
// values — the draw (node, cat, weight) plus the optional star summary
// (degree, neighbor-category counts, with the same omitted-degree semantics
// as JSON: a zero degree means "derive it from the counts") and the optional
// induced-edge peer list. The codec is a faithful bit-level transport: it
// performs no semantic validation beyond structure (the ingest layer applies
// the same category/weight/star checks to both encodings), so JSON and
// binary deliveries of the same records are indistinguishable downstream.
//
// Frame layout (all integers little-endian, floats IEEE-754 binary64 bits):
//
//	offset  size  field
//	     0     8  magic "TOPOREC1"
//	     8     4  version (currently 1)
//	    12     4  count (records in the batch; 0 is a legal empty batch)
//	    16     4  payloadLen (bytes after the 24-byte frame header)
//	    20     4  crc32 (IEEE) of the payload
//	    24     …  payload: count records, back to back
//
// Record layout:
//
//	node    i32
//	cat     i32   (-1 = uncategorized, as in JSON)
//	weight  f64   (raw bits; 0 means "weight 1 / inherit", as in JSON)
//	flags   u8    bit0 = star section present, bit1 = peer section present
//	[star]  deg f64 (raw bits; 0 = omitted degree), nbrs u32,
//	        nbrs × (cat i32, cnt f64)
//	[peers] n u32, n × (peer i32)
//
// Encoding is canonical, per the TOPOSUM1/TOPOCKP1 discipline: the star
// section is present iff the observation carries star data (nonzero degree
// bits or a nonempty neighbor list) and must itself be nonempty; the peer
// section is present iff the peer list is nonempty; unknown flag bits,
// reserved-field violations, inexact frame lengths and trailing bytes are
// all rejected. Decode∘Encode is the identity on values and Encode∘Decode
// is the identity on accepted byte strings (the FuzzDecodeRecords
// invariant).
import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/sample"
)

const (
	// RecordsVersion is the record-batch frame version this build writes
	// and the newest it decodes.
	RecordsVersion = 1

	// RecordsContentType is the MIME type that selects the binary record
	// batch encoding on POST /ingest (JSON remains the default).
	RecordsContentType = "application/x-topoest-records"

	recMagic      = "TOPOREC1"
	recHeaderSize = 24

	recFlagStar   = 1 << 0
	recFlagPeers  = 1 << 1
	recFlagsKnown = recFlagStar | recFlagPeers

	// recMinSize is the fixed prefix of every record: node, cat, weight,
	// flags. It bounds the header-declared count before the payload walk.
	recMinSize = 4 + 4 + 8 + 1
)

// EncodeRecords serializes one batch as a TOPOREC1 frame. Records travel
// bit-faithfully (weights and degrees as raw IEEE-754 bits, zero meaning
// the same "omitted" it means in JSON); the only requirement is structural:
// neighbor category and count lists must have equal length. An empty batch
// encodes as a bare frame header.
func EncodeRecords(recs []sample.NodeObservation) ([]byte, error) {
	size := recHeaderSize
	for i := range recs {
		r := &recs[i]
		if len(r.NbrCat) != len(r.NbrCnt) {
			return nil, fmt.Errorf("wire: record %d has %d neighbor categories but %d counts", i, len(r.NbrCat), len(r.NbrCnt))
		}
		size += recMinSize
		if recordHasStar(r) {
			size += 8 + 4 + len(r.NbrCat)*(4+8)
		}
		if len(r.Peers) > 0 {
			size += 4 + len(r.Peers)*4
		}
	}
	if uint64(len(recs)) > math.MaxUint32 || uint64(size-recHeaderSize) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: record batch of %d records (%d bytes) exceeds the frame's 32-bit dimensions", len(recs), size)
	}

	buf := make([]byte, size)
	w := writer{buf: buf, off: recHeaderSize}
	for i := range recs {
		r := &recs[i]
		w.u32(uint32(r.Node))
		w.u32(uint32(r.Cat))
		w.f64(r.Weight)
		var flags byte
		if recordHasStar(r) {
			flags |= recFlagStar
		}
		if len(r.Peers) > 0 {
			flags |= recFlagPeers
		}
		w.byte(flags)
		if flags&recFlagStar != 0 {
			w.f64(r.Deg)
			w.u32(uint32(len(r.NbrCat)))
			for j := range r.NbrCat {
				w.u32(uint32(r.NbrCat[j]))
				w.f64(r.NbrCnt[j])
			}
		}
		if flags&recFlagPeers != 0 {
			w.u32(uint32(len(r.Peers)))
			for _, p := range r.Peers {
				w.u32(uint32(p))
			}
		}
	}
	if w.off != len(buf) {
		panic(fmt.Sprintf("wire: encoded %d bytes into a %d-byte record-batch layout", w.off, len(buf)))
	}

	copy(buf[0:8], recMagic)
	binary.LittleEndian.PutUint32(buf[8:12], RecordsVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(recs)))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(size-recHeaderSize))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[recHeaderSize:]))
	return buf, nil
}

// recordHasStar reports whether the observation carries star data and
// therefore gets a star section. The test is on raw degree bits, not the
// float value, so -0.0 degrees (which JSON cannot express but the struct
// can) still round-trip bit-exactly.
func recordHasStar(r *sample.NodeObservation) bool {
	return math.Float64bits(r.Deg) != 0 || len(r.NbrCat) > 0
}

// RecordIter decodes a TOPOREC1 frame record by record without allocating
// per record: the slice fields of the record filled by Next alias scratch
// buffers that the following Next call reuses. That is exactly the contract
// stream ingest wants — stream.Local.Ingest and stream.Accumulator.Ingest
// copy any slice they retain — so decode feeds the hot path with zero
// per-record allocations. Callers that keep records past the next call must
// copy the slices (DecodeRecords does).
type RecordIter struct {
	r     reader
	count int
	i     int

	nbrCat []int32
	nbrCnt []float64
	peers  []int32
}

// NewRecordIter validates data as one complete TOPOREC1 frame and returns
// an iterator over its records. See Reset for the validation contract.
func NewRecordIter(data []byte) (*RecordIter, error) {
	it := &RecordIter{}
	if err := it.Reset(data); err != nil {
		return nil, err
	}
	return it, nil
}

// Reset re-points the iterator at a new frame, reusing its scratch buffers.
// The frame is validated completely up front — header, checksum, and a
// structural walk of every record — so a malformed batch is rejected before
// the caller ingests anything (matching JSON ingest, where a body that does
// not parse is refused whole) and Next never fails.
func (it *RecordIter) Reset(data []byte) error {
	it.r, it.count, it.i = reader{}, 0, 0
	if len(data) < recHeaderSize {
		return fmt.Errorf("wire: truncated record batch: %d bytes, need at least the %d-byte frame header", len(data), recHeaderSize)
	}
	if string(data[0:8]) != recMagic {
		return fmt.Errorf("wire: bad magic %q: not a record batch", data[0:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version == 0 || version > RecordsVersion {
		return fmt.Errorf("wire: record batch has codec version %d; this build decodes versions 1…%d (upgrade this process or downgrade the sender)", version, RecordsVersion)
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	payloadLen := binary.LittleEndian.Uint32(data[16:20])
	if len(data) != recHeaderSize+int(payloadLen) {
		return fmt.Errorf("wire: record batch is %d bytes, frame declares %d", len(data), recHeaderSize+int(payloadLen))
	}
	if uint64(count)*recMinSize > uint64(payloadLen) {
		return fmt.Errorf("wire: record batch declares %d records in %d payload bytes", count, payloadLen)
	}
	payload := data[recHeaderSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[20:24]); got != want {
		return fmt.Errorf("wire: record batch checksum mismatch (stored %#x, computed %#x)", want, got)
	}
	off := 0
	for i := 0; i < int(count); i++ {
		n, err := walkRecord(payload, off, i)
		if err != nil {
			return err
		}
		off = n
	}
	if off != len(payload) {
		return fmt.Errorf("wire: record batch has %d trailing payload bytes", len(payload)-off)
	}
	it.r = reader{buf: payload}
	it.count = int(count)
	return nil
}

// walkRecord bounds-checks one record starting at off and enforces the
// canonical-form rules, returning the offset past it.
func walkRecord(p []byte, off, i int) (int, error) {
	if len(p)-off < recMinSize {
		return 0, fmt.Errorf("wire: truncated record %d: %d payload bytes left, need at least %d", i, len(p)-off, recMinSize)
	}
	flags := p[off+recMinSize-1]
	off += recMinSize
	if flags&^byte(recFlagsKnown) != 0 {
		return 0, fmt.Errorf("wire: record %d has unknown flag bits %#x (corrupt payload or newer writer)", i, flags&^byte(recFlagsKnown))
	}
	if flags&recFlagStar != 0 {
		if len(p)-off < 8+4 {
			return 0, fmt.Errorf("wire: truncated record %d: star section header needs 12 bytes, %d left", i, len(p)-off)
		}
		degBits := binary.LittleEndian.Uint64(p[off:])
		nbrs := binary.LittleEndian.Uint32(p[off+8:])
		off += 12
		if degBits == 0 && nbrs == 0 {
			return 0, fmt.Errorf("wire: record %d has an empty star section (non-canonical)", i)
		}
		need := int64(nbrs) * (4 + 8)
		if int64(len(p)-off) < need {
			return 0, fmt.Errorf("wire: truncated record %d: neighbor list needs %d bytes, %d left", i, need, len(p)-off)
		}
		off += int(need)
	}
	if flags&recFlagPeers != 0 {
		if len(p)-off < 4 {
			return 0, fmt.Errorf("wire: truncated record %d: peer count needs 4 bytes, %d left", i, len(p)-off)
		}
		n := binary.LittleEndian.Uint32(p[off:])
		off += 4
		if n == 0 {
			return 0, fmt.Errorf("wire: record %d has an empty peer section (non-canonical)", i)
		}
		need := int64(n) * 4
		if int64(len(p)-off) < need {
			return 0, fmt.Errorf("wire: truncated record %d: peer list needs %d bytes, %d left", i, need, len(p)-off)
		}
		off += int(need)
	}
	return off, nil
}

// Len returns the number of records in the frame.
func (it *RecordIter) Len() int { return it.count }

// Next decodes the next record into rec, returning false when the frame is
// exhausted. rec's slice fields alias the iterator's scratch and are only
// valid until the next Next or Reset call; absent sections leave them nil,
// exactly as the JSON decoder leaves omitted fields.
func (it *RecordIter) Next(rec *sample.NodeObservation) bool {
	if it.i >= it.count {
		return false
	}
	it.i++
	rec.Node = int32(it.r.u32())
	rec.Cat = int32(it.r.u32())
	rec.Weight = it.r.f64()
	flags := it.r.u8()
	rec.Deg = 0
	rec.NbrCat, rec.NbrCnt, rec.Peers = nil, nil, nil
	if flags&recFlagStar != 0 {
		rec.Deg = it.r.f64()
		nbrs := int(it.r.u32())
		it.nbrCat = it.nbrCat[:0]
		it.nbrCnt = it.nbrCnt[:0]
		for j := 0; j < nbrs; j++ {
			it.nbrCat = append(it.nbrCat, int32(it.r.u32()))
			it.nbrCnt = append(it.nbrCnt, it.r.f64())
		}
		if nbrs > 0 {
			rec.NbrCat, rec.NbrCnt = it.nbrCat, it.nbrCnt
		}
	}
	if flags&recFlagPeers != 0 {
		n := int(it.r.u32())
		it.peers = it.peers[:0]
		for j := 0; j < n; j++ {
			it.peers = append(it.peers, int32(it.r.u32()))
		}
		rec.Peers = it.peers
	}
	return true
}

// DecodeRecords materializes a frame as an owned slice — the convenience
// (and fuzz) entry point. Hot paths iterate instead.
func DecodeRecords(data []byte) ([]sample.NodeObservation, error) {
	it, err := NewRecordIter(data)
	if err != nil {
		return nil, err
	}
	recs := make([]sample.NodeObservation, 0, it.Len())
	var rec sample.NodeObservation
	for it.Next(&rec) {
		rec.NbrCat = append([]int32(nil), rec.NbrCat...)
		rec.NbrCnt = append([]float64(nil), rec.NbrCnt...)
		rec.Peers = append([]int32(nil), rec.Peers...)
		recs = append(recs, rec)
	}
	return recs, nil
}

func (r *reader) u8() byte {
	v := r.buf[r.off]
	r.off++
	return v
}
