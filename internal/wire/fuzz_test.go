package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/stream"
	"repro/internal/uncert"
)

// FuzzDecode drives arbitrary bytes through Decode. The invariants: Decode
// never panics or reads out of bounds, and any input it accepts is in the
// image of Encode — re-encoding the decoded state reproduces the input
// byte for byte (the codec is a bijection between states and canonical
// encodings, which is what makes corruption detectable at all).
func FuzzDecode(f *testing.F) {
	seed := func(star bool, boot uncert.Config) []byte {
		const k = 4
		acc, err := stream.NewAccumulator(stream.Config{K: k, Star: star, Replicates: boot})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			var rec = starRecord(int32(i%12), k)
			if !star {
				rec = inducedRecord(int32(i%12), k)
			}
			if err := acc.Ingest(rec); err != nil {
				f.Fatal(err)
			}
		}
		st, err := acc.Export()
		if err != nil {
			f.Fatal(err)
		}
		enc, err := Encode(st)
		if err != nil {
			f.Fatal(err)
		}
		return enc
	}

	starBoot := seed(true, uncert.Config{B: 6, Seed: 9})
	f.Add(starBoot)
	f.Add(seed(true, uncert.Config{}))
	f.Add(seed(false, uncert.Config{B: 4, Seed: 1}))
	f.Add(starBoot[:headerSize])
	f.Add(starBoot[:len(starBoot)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	mut := append([]byte(nil), starBoot...)
	binary.LittleEndian.PutUint32(mut[8:], 2) // future version
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(st)
		if err != nil {
			t.Fatalf("Decode accepted input Encode rejects: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d-byte input re-encodes to different %d bytes", len(data), len(re))
		}
	})
}

// FuzzDecodeRecords drives arbitrary bytes through the TOPOREC1 decoder.
// Same invariants as FuzzDecode: no panics or out-of-bounds reads, and any
// accepted input is in the image of EncodeRecords — the decoded batch
// re-encodes byte for byte. Canonical-form enforcement (star/peer sections
// present iff nonempty, exact frame length) is what makes this a bijection.
func FuzzDecodeRecords(f *testing.F) {
	full := recBatch()
	enc, err := EncodeRecords(full)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	empty, err := EncodeRecords(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	one, err := EncodeRecords(full[:1])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(one)
	f.Add(enc[:recHeaderSize])
	f.Add(enc[:len(enc)/2])
	f.Add([]byte(recMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(mut[8:], 2) // future version
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return
		}
		re, err := EncodeRecords(recs)
		if err != nil {
			t.Fatalf("DecodeRecords accepted input EncodeRecords rejects: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d-byte input re-encodes to different %d bytes", len(data), len(re))
		}
	})
}
