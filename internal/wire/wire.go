// Package wire is the codec of the distributed estimation tier: a compact,
// versioned, little-endian binary encoding of a stream.State — the
// Hansen–Hurwitz sufficient statistics (core.Sums), the §4.3 population-size
// scalars, and the online-bootstrap replicate sums (uncert.Replicates) — for
// shipping between topoestd processes. Workers serve the encoding on
// GET /sums; a merge coordinator decodes and re-merges it into the pooled
// estimate.
//
// The format follows the graph/pack.go discipline: fixed magic, explicit
// version, a header that fully determines the payload layout so truncation
// and corruption are detected at decode (never by reading past a buffer),
// and length-checked section reads. Floats travel as raw IEEE-754 bits, so
// Decode∘Encode is the identity on values and Encode∘Decode is the identity
// on accepted byte strings (the fuzz invariant): pair tables are emitted in
// canonical sorted order and decoders reject non-canonical input.
//
// Layout (all integers little-endian, all floats IEEE-754 binary64 bits):
//
//	offset  size  field
//	     0     8  magic "TOPOSUM1"
//	     8     4  version (currently 1)
//	    12     4  flags: bit0 = star scenario, bit1 = replicates present
//	    16     4  k (number of categories, 1 … 1<<24)
//	    20     4  B (bootstrap replicates; 0 unless bit1 set)
//	    24     8  gen (ingest generation of the cut)
//	    32     8  bootstrap seed (0 unless bit1 set)
//	    40     4  sumsPairs (entries in the primary pair table)
//	    44     4  repPairs (entries in the replicate pair table)
//	    48     8  distinct (int64, distinct nodes at the cut)
//	    56     8  reserved (zero)
//	    64     …  section A: 8 float64 — draws, totalRew, rewSq, degNum,
//	              psi1, psiInv, collisions, reserved(0)
//	           …  section B: per-category float64[k] arrays — Rew, DrawsA,
//	              Rew2, RewSqA, WithinNum, then DegNumA, NbrNum when star
//	           …  section C: sumsPairs × (a uint32, b uint32, w float64),
//	              canonical 0 ≤ a < b < k, strictly increasing by (a, b)
//	           …  section D (bit1 only): replicate scalar float64[B] vectors
//	              draws, totalRew, rewSq, psi1, psiInv, coll, then degNum
//	              when star; replicate float64[k·B] grids rew, drawsA, rew2,
//	              rewSqA, withinNum, then degNumA, nbrNum when star;
//	              repPairs × (a uint32, b uint32, float64[B]), canonical and
//	              strictly increasing by (a, b)
//
// The total size is a function of (flags, k, B, sumsPairs, repPairs) alone;
// Decode computes it up front and requires exact equality.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/uncert"
)

const (
	// Version is the codec version this build writes and the newest it
	// decodes. Workers advertise it in the VersionHeader HTTP header so a
	// coordinator can reject a payload before buffering it.
	Version = 1

	// ContentType is the MIME type of an encoded state on the wire.
	ContentType = "application/x-topoest-sums"
	// VersionHeader carries the codec version on /sums responses.
	VersionHeader = "X-Topoest-Sums-Version"

	magic      = "TOPOSUM1"
	headerSize = 64

	flagStar       = 1 << 0
	flagReplicates = 1 << 1
	flagsKnown     = flagStar | flagReplicates

	// maxK and maxB bound the header-declared dimensions so a corrupt or
	// hostile header cannot drive the size arithmetic anywhere interesting:
	// k, B ≤ 1<<24 keeps every product in this file well under 1<<63.
	maxK = 1 << 24
	maxB = 1 << 24
)

type pairEntry struct {
	a, b int32
	w    float64
}

// Encode serializes a state. The state must be well-formed: Sums present and
// matching the declared K/scenario, and replicates (when present) matching
// too — Export produces exactly such states.
func Encode(st *stream.State) ([]byte, error) {
	if st == nil || st.Sums == nil {
		return nil, fmt.Errorf("wire: cannot encode a nil state")
	}
	if st.K < 1 || st.K > maxK {
		return nil, fmt.Errorf("wire: state has %d categories, encodable range is 1…%d", st.K, maxK)
	}
	if st.Sums.K != st.K || st.Sums.Star != st.Star {
		return nil, fmt.Errorf("wire: state sums (k=%d star=%v) disagree with state header (k=%d star=%v)",
			st.Sums.K, st.Sums.Star, st.K, st.Star)
	}

	// Primary pair table, canonical order.
	sumsPairs := make([]pairEntry, 0, st.Sums.PairNum.Len())
	st.Sums.PairNum.ForEach(func(a, b int32, w float64) {
		sumsPairs = append(sumsPairs, pairEntry{a, b, w})
	})
	sortPairs(sumsPairs)

	var (
		flags uint32
		bB    int
		seed  uint64
		raw   *uncert.RawReplicates
	)
	if st.Star {
		flags |= flagStar
	}
	var repPairs [][2]int32
	if st.Reps != nil {
		cfg := st.Reps.Config()
		if cfg.B < 1 || cfg.B > maxB {
			return nil, fmt.Errorf("wire: state has %d bootstrap replicates, encodable range is 1…%d", cfg.B, maxB)
		}
		flags |= flagReplicates
		bB = cfg.B
		seed = cfg.Seed
		raw = st.Reps.Raw()
		if raw.K != st.K || raw.Star != st.Star {
			return nil, fmt.Errorf("wire: state replicates (k=%d star=%v) disagree with state header (k=%d star=%v)",
				raw.K, raw.Star, st.K, st.Star)
		}
		repPairs = make([][2]int32, 0, len(raw.Pairs))
		for key := range raw.Pairs {
			repPairs = append(repPairs, key)
		}
		sort.Slice(repPairs, func(i, j int) bool {
			if repPairs[i][0] != repPairs[j][0] {
				return repPairs[i][0] < repPairs[j][0]
			}
			return repPairs[i][1] < repPairs[j][1]
		})
	}

	size := totalSize(flags, st.K, bB, len(sumsPairs), len(repPairs))
	buf := make([]byte, size)
	h := buf[:headerSize]
	copy(h[0:8], magic)
	binary.LittleEndian.PutUint32(h[8:12], Version)
	binary.LittleEndian.PutUint32(h[12:16], flags)
	binary.LittleEndian.PutUint32(h[16:20], uint32(st.K))
	binary.LittleEndian.PutUint32(h[20:24], uint32(bB))
	binary.LittleEndian.PutUint64(h[24:32], st.Gen)
	binary.LittleEndian.PutUint64(h[32:40], seed)
	binary.LittleEndian.PutUint32(h[40:44], uint32(len(sumsPairs)))
	binary.LittleEndian.PutUint32(h[44:48], uint32(len(repPairs)))
	binary.LittleEndian.PutUint64(h[48:56], uint64(st.Distinct))

	w := writer{buf: buf, off: headerSize}

	// Section A.
	s := st.Sums
	w.f64(s.Draws)
	w.f64(s.TotalRew)
	w.f64(s.RewSq)
	w.f64(s.DegNum)
	w.f64(st.Psi1)
	w.f64(st.PsiInv)
	w.f64(st.Collisions)
	w.f64(0)

	// Section B.
	for _, arr := range [][]float64{s.Rew, s.DrawsA, s.Rew2, s.RewSqA, s.WithinNum} {
		w.f64s(st.K, arr)
	}
	if st.Star {
		w.f64s(st.K, s.DegNumA)
		w.f64s(st.K, s.NbrNum)
	}

	// Section C.
	for _, p := range sumsPairs {
		w.u32(uint32(p.a))
		w.u32(uint32(p.b))
		w.f64(p.w)
	}

	// Section D.
	if raw != nil {
		scalars := [][]float64{raw.Draws, raw.TotalRew, raw.RewSq, raw.Psi1, raw.PsiInv, raw.Coll}
		if st.Star {
			scalars = append(scalars, raw.DegNum)
		}
		for _, v := range scalars {
			w.f64s(bB, v)
		}
		grids := [][]float64{raw.Rew, raw.DrawsA, raw.Rew2, raw.RewSqA, raw.WithinNum}
		if st.Star {
			grids = append(grids, raw.DegNumA, raw.NbrNum)
		}
		for _, g := range grids {
			w.f64s(st.K*bB, g)
		}
		for _, key := range repPairs {
			w.u32(uint32(key[0]))
			w.u32(uint32(key[1]))
			w.f64s(bB, raw.Pairs[key])
		}
	}

	if w.off != len(buf) {
		// Layout arithmetic and emission disagree — a codec bug, not input.
		panic(fmt.Sprintf("wire: encoded %d bytes into a %d-byte layout", w.off, len(buf)))
	}
	return buf, nil
}

// Decode parses an encoded state, validating the header, the exact payload
// length, and the canonical form of both pair tables before touching any
// section. Corrupt, truncated, or future-version input fails with a
// descriptive error; accepted input re-encodes byte-identically.
func Decode(data []byte) (*stream.State, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("wire: truncated payload: %d bytes, need at least the %d-byte header", len(data), headerSize)
	}
	h := data[:headerSize]
	if string(h[0:8]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q: not a sums payload", h[0:8])
	}
	version := binary.LittleEndian.Uint32(h[8:12])
	if version == 0 || version > Version {
		return nil, fmt.Errorf("wire: sums payload has codec version %d; this build decodes versions 1…%d (upgrade this process or downgrade the sender)", version, Version)
	}
	flags := binary.LittleEndian.Uint32(h[12:16])
	if flags&^uint32(flagsKnown) != 0 {
		return nil, fmt.Errorf("wire: unknown flag bits %#x (corrupt payload or newer writer)", flags&^uint32(flagsKnown))
	}
	star := flags&flagStar != 0
	withReps := flags&flagReplicates != 0
	k := binary.LittleEndian.Uint32(h[16:20])
	bB := binary.LittleEndian.Uint32(h[20:24])
	gen := binary.LittleEndian.Uint64(h[24:32])
	seed := binary.LittleEndian.Uint64(h[32:40])
	sumsPairs := binary.LittleEndian.Uint32(h[40:44])
	repPairs := binary.LittleEndian.Uint32(h[44:48])
	distinct := int64(binary.LittleEndian.Uint64(h[48:56]))
	// Reserved space must be zero: a writer that populated it is newer than
	// this build, and tolerating it would break the one-encoding-per-state
	// property the corruption tests rely on.
	if binary.LittleEndian.Uint64(h[56:64]) != 0 {
		return nil, fmt.Errorf("wire: reserved header bytes are not zero (corrupt payload or newer writer)")
	}
	if !withReps && seed != 0 {
		return nil, fmt.Errorf("wire: header declares a bootstrap seed without the replicates flag")
	}

	if k < 1 || k > maxK {
		return nil, fmt.Errorf("wire: header declares %d categories, valid range is 1…%d", k, maxK)
	}
	if withReps {
		if bB < 1 || bB > maxB {
			return nil, fmt.Errorf("wire: header declares %d bootstrap replicates, valid range is 1…%d", bB, maxB)
		}
	} else if bB != 0 || repPairs != 0 {
		return nil, fmt.Errorf("wire: header declares B=%d and %d replicate pairs without the replicates flag", bB, repPairs)
	}
	// Both pair tables are over unordered category pairs, so k·(k−1)/2 is a
	// hard cap (k ≤ 1<<24 keeps the product far from overflow).
	maxPairs := uint64(k) * uint64(k-1) / 2
	if uint64(sumsPairs) > maxPairs {
		return nil, fmt.Errorf("wire: header declares %d pair entries, at most %d exist over %d categories", sumsPairs, maxPairs, k)
	}
	if uint64(repPairs) > maxPairs {
		return nil, fmt.Errorf("wire: header declares %d replicate pair entries, at most %d exist over %d categories", repPairs, maxPairs, k)
	}
	want := totalSize(flags, int(k), int(bB), int(sumsPairs), int(repPairs))
	if len(data) != want {
		return nil, fmt.Errorf("wire: payload is %d bytes, header-described layout is %d", len(data), want)
	}

	st := &stream.State{
		K:        int(k),
		Star:     star,
		Gen:      gen,
		Distinct: distinct,
		Sums:     core.NewSums(int(k), star),
	}
	r := reader{buf: data, off: headerSize}

	// Section A.
	s := st.Sums
	s.Draws = r.f64()
	s.TotalRew = r.f64()
	s.RewSq = r.f64()
	s.DegNum = r.f64()
	st.Psi1 = r.f64()
	st.PsiInv = r.f64()
	st.Collisions = r.f64()
	if math.Float64bits(r.f64()) != 0 {
		return nil, fmt.Errorf("wire: reserved scalar slot is not zero (corrupt payload or newer writer)")
	}

	// Section B.
	for _, arr := range [][]float64{s.Rew, s.DrawsA, s.Rew2, s.RewSqA, s.WithinNum} {
		r.f64s(arr)
	}
	if star {
		r.f64s(s.DegNumA)
		r.f64s(s.NbrNum)
	}

	// Section C.
	prevA, prevB := int32(-1), int32(-1)
	for i := 0; i < int(sumsPairs); i++ {
		a, b := int32(r.u32()), int32(r.u32())
		if err := checkPair(a, b, prevA, prevB, int32(k), "pair"); err != nil {
			return nil, err
		}
		s.PairNum.Set(a, b, r.f64())
		prevA, prevB = a, b
	}

	// Section D.
	if withReps {
		raw := &uncert.RawReplicates{
			K:    int(k),
			Star: star,
			Cfg:  uncert.Config{B: int(bB), Seed: seed},
		}
		scalars := []*[]float64{&raw.Draws, &raw.TotalRew, &raw.RewSq, &raw.Psi1, &raw.PsiInv, &raw.Coll}
		if star {
			scalars = append(scalars, &raw.DegNum)
		}
		for _, v := range scalars {
			*v = make([]float64, bB)
			r.f64s(*v)
		}
		grids := []*[]float64{&raw.Rew, &raw.DrawsA, &raw.Rew2, &raw.RewSqA, &raw.WithinNum}
		if star {
			grids = append(grids, &raw.DegNumA, &raw.NbrNum)
		}
		for _, g := range grids {
			*g = make([]float64, int(k)*int(bB))
			r.f64s(*g)
		}
		raw.Pairs = make(map[[2]int32][]float64, repPairs)
		prevA, prevB = -1, -1
		for i := 0; i < int(repPairs); i++ {
			a, b := int32(r.u32()), int32(r.u32())
			if err := checkPair(a, b, prevA, prevB, int32(k), "replicate pair"); err != nil {
				return nil, err
			}
			v := make([]float64, bB)
			r.f64s(v)
			raw.Pairs[[2]int32{a, b}] = v
			prevA, prevB = a, b
		}
		reps, err := uncert.NewReplicatesFromRaw(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
		st.Reps = reps
	}

	if r.off != len(data) {
		panic(fmt.Sprintf("wire: decoded %d of %d bytes", r.off, len(data)))
	}
	return st, nil
}

// totalSize computes the exact encoded size from the header-declared
// dimensions. All callers have bounded k ≤ 1<<24, b ≤ 1<<24, and pair counts
// ≤ k²/2, so every term fits comfortably in an int64 even on the maximum
// header; the result only ever meets in-memory buffers.
func totalSize(flags uint32, k, b, sumsPairs, repPairs int) int {
	catArrays := 5
	repScalars := 6
	repGrids := 5
	if flags&flagStar != 0 {
		catArrays = 7
		repScalars = 7
		repGrids = 7
	}
	size := headerSize +
		8*8 + // section A
		catArrays*k*8 + // section B
		sumsPairs*(4+4+8) // section C
	if flags&flagReplicates != 0 {
		size += repScalars*b*8 + repGrids*k*b*8 + repPairs*(4+4+b*8)
	}
	return size
}

// checkPair enforces the canonical pair-table form: 0 ≤ a < b < k, entries
// strictly increasing by (a, b). Canonical form is what makes the encoding
// of a given state unique (and therefore fuzz-checkable as a bijection).
func checkPair(a, b, prevA, prevB, k int32, what string) error {
	if a < 0 || b <= a || b >= k {
		return fmt.Errorf("wire: %s table entry {%d,%d} is not canonical for %d categories", what, a, b, k)
	}
	if a < prevA || (a == prevA && b <= prevB) {
		return fmt.Errorf("wire: %s table entry {%d,%d} out of order after {%d,%d}", what, a, b, prevA, prevB)
	}
	return nil
}

func sortPairs(ps []pairEntry) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})
}

// writer appends fixed-width values into a pre-sized buffer. Layout
// arithmetic (totalSize) guarantees capacity; an overrun is a codec bug and
// panics in Encode's final length check.
type writer struct {
	buf []byte
	off int
}

func (w *writer) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[w.off:], v)
	w.off += 4
}

func (w *writer) f64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[w.off:], math.Float64bits(v))
	w.off += 8
}

// f64s writes exactly n floats; a nil src (legal for an all-zero section,
// e.g. star arrays of a fresh accumulator) writes n zeros.
func (w *writer) f64s(n int, src []float64) {
	if src != nil && len(src) != n {
		panic(fmt.Sprintf("wire: section of %d floats, want %d", len(src), n))
	}
	for i := 0; i < n; i++ {
		var v float64
		if src != nil {
			v = src[i]
		}
		w.f64(v)
	}
}

// reader consumes fixed-width values from a buffer whose exact length was
// validated against totalSize, so reads cannot run past the end.
type reader struct {
	buf []byte
	off int
}

func (r *reader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) f64() float64 {
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) f64s(dst []float64) {
	for i := range dst {
		dst[i] = r.f64()
	}
}
