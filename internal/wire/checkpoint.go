package wire

// Durable checkpoint frames. A checkpoint wraps a job's complete resumable
// state — the TOPOSUM1 payload (sums, collision scalars, replicates,
// generation) plus the node directory that Export omits — in a framed,
// CRC-guarded container that is safe to APPEND to a file: a crash can only
// damage the final frame, and LastCheckpoint recovers the newest frame whose
// checksum and content both verify, ignoring any torn tail.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	     0     8  magic "TOPOCKP1"
//	     8     4  version (currently 1)
//	    12     4  payloadLen (bytes after the 24-byte frame header)
//	    16     4  crc32 (IEEE) of the payload
//	    20     4  reserved (zero)
//	    24     …  payload
//
// Payload layout:
//
//	gen      u64   ingest generation at the cut (mirrors the inner state's
//	               Gen so scanners can order frames without a full decode)
//	nameLen  u32   + name bytes (the job name; 1…255 bytes)
//	cfgLen   u32   + config bytes (opaque to this codec — the job layer
//	               stores its serialized spec here; may be empty)
//	stateLen u32   + a complete TOPOSUM1 encoding (see Encode)
//	nodes    u32   node directory entries, ascending by node id:
//	    node i32, cat i32, mult f64, weight f64,
//	    flags u8 (bit0 = starSeen), deg f64,
//	    nbrs u32 + nbrs × (cat i32, cnt f64),
//	    peers u32 + peers × (peer i32)
//
// Encoding is canonical — node records ascend, star lists travel in their
// stored (already canonical) order — so checkpoint → restore → checkpoint
// reproduces the frame byte for byte, which the robustness tests pin.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/stream"
)

const (
	// CheckpointVersion is the frame version this build writes and the
	// newest it reads.
	CheckpointVersion = 1

	ckpMagic      = "TOPOCKP1"
	ckpHeaderSize = 24

	// maxCheckpointName bounds the job-name field; names are
	// filename-safe short identifiers at the job layer.
	maxCheckpointName = 255

	ckpFlagStarSeen = 1 << 0
)

// Checkpoint is one durable frame: a named job's complete resumable state
// plus its opaque serialized configuration.
type Checkpoint struct {
	// Name identifies the job the state belongs to (1…255 bytes).
	Name string
	// Config is the job layer's serialized spec, carried opaquely so a
	// restart can verify it restores under a compatible configuration.
	Config []byte
	// Gen is the ingest generation at the cut; it always equals
	// State.State.Gen and exists in the frame for cheap ordering scans.
	Gen uint64
	// State is the complete resumable state (see stream.FullState).
	State *stream.FullState
}

// EncodeCheckpoint serializes one frame.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if cp == nil || cp.State == nil {
		return nil, fmt.Errorf("wire: cannot encode a nil checkpoint")
	}
	if len(cp.Name) < 1 || len(cp.Name) > maxCheckpointName {
		return nil, fmt.Errorf("wire: checkpoint name must be 1…%d bytes, got %d", maxCheckpointName, len(cp.Name))
	}
	if cp.Gen != cp.State.State.Gen {
		return nil, fmt.Errorf("wire: checkpoint gen %d disagrees with its state's gen %d", cp.Gen, cp.State.State.Gen)
	}
	stateBytes, err := Encode(cp.State.State)
	if err != nil {
		return nil, err
	}

	payload := 8 + 4 + len(cp.Name) + 4 + len(cp.Config) + 4 + len(stateBytes) + 4
	for i := range cp.State.Nodes {
		nr := &cp.State.Nodes[i]
		payload += 4 + 4 + 8 + 8 + 1 + 8 + 4 + len(nr.NbrCat)*(4+8) + 4 + len(nr.Peers)*4
	}

	buf := make([]byte, ckpHeaderSize+payload)
	w := writer{buf: buf, off: ckpHeaderSize}
	w.u64(cp.Gen)
	w.u32(uint32(len(cp.Name)))
	w.bytes([]byte(cp.Name))
	w.u32(uint32(len(cp.Config)))
	w.bytes(cp.Config)
	w.u32(uint32(len(stateBytes)))
	w.bytes(stateBytes)
	w.u32(uint32(len(cp.State.Nodes)))
	prev := int64(math.MinInt64)
	for i := range cp.State.Nodes {
		nr := &cp.State.Nodes[i]
		if int64(nr.Node) <= prev {
			return nil, fmt.Errorf("wire: checkpoint node records out of order at node %d", nr.Node)
		}
		prev = int64(nr.Node)
		if len(nr.NbrCat) != len(nr.NbrCnt) {
			return nil, fmt.Errorf("wire: checkpoint node %d has %d neighbor categories but %d counts", nr.Node, len(nr.NbrCat), len(nr.NbrCnt))
		}
		w.u32(uint32(nr.Node))
		w.u32(uint32(nr.Cat))
		w.f64(nr.Mult)
		w.f64(nr.Weight)
		var flags byte
		if nr.StarSeen {
			flags |= ckpFlagStarSeen
		}
		w.byte(flags)
		w.f64(nr.Deg)
		w.u32(uint32(len(nr.NbrCat)))
		for j := range nr.NbrCat {
			w.u32(uint32(nr.NbrCat[j]))
			w.f64(nr.NbrCnt[j])
		}
		w.u32(uint32(len(nr.Peers)))
		for _, p := range nr.Peers {
			w.u32(uint32(p))
		}
	}
	if w.off != len(buf) {
		panic(fmt.Sprintf("wire: encoded %d bytes into a %d-byte checkpoint layout", w.off, len(buf)))
	}

	copy(buf[0:8], ckpMagic)
	binary.LittleEndian.PutUint32(buf[8:12], CheckpointVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(payload))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(buf[ckpHeaderSize:]))
	return buf, nil
}

// AppendCheckpoint encodes cp and writes the frame to w — the append-only
// checkpoint-file discipline. It returns the frame size in bytes.
//
// Durability contract: AppendCheckpoint only writes; it is the caller's job
// to make the frame survive a crash. That takes two fsyncs, not one — the
// file must be fsynced after the write (or the frame can be lost), and when
// the write is the one that CREATED the file, the containing directory must
// be fsynced too, or a crash immediately after job creation can lose the
// file itself: the frame is durable but unreachable, because the directory
// entry pointing at it never hit disk. The job layer does both (see
// Job.Checkpoint); CompactCheckpoints honors the same contract when it
// replaces the file.
func AppendCheckpoint(w io.Writer, cp *Checkpoint) (int, error) {
	buf, err := EncodeCheckpoint(cp)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("wire: checkpoint write: %w", err)
	}
	return n, nil
}

// DecodeCheckpoint parses the frame at the start of data, returning the
// checkpoint and the number of bytes it consumed (so callers can walk an
// appended sequence). Truncation, checksum mismatch and malformed content
// all error without reading past data.
func DecodeCheckpoint(data []byte) (*Checkpoint, int, error) {
	if len(data) < ckpHeaderSize {
		return nil, 0, fmt.Errorf("wire: truncated checkpoint: %d bytes, need at least the %d-byte frame header", len(data), ckpHeaderSize)
	}
	if string(data[0:8]) != ckpMagic {
		return nil, 0, fmt.Errorf("wire: bad magic %q: not a checkpoint frame", data[0:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version == 0 || version > CheckpointVersion {
		return nil, 0, fmt.Errorf("wire: checkpoint frame has version %d; this build reads versions 1…%d", version, CheckpointVersion)
	}
	payloadLen := binary.LittleEndian.Uint32(data[12:16])
	if binary.LittleEndian.Uint32(data[16:20]) == 0 && payloadLen == 0 {
		return nil, 0, fmt.Errorf("wire: empty checkpoint frame")
	}
	if binary.LittleEndian.Uint32(data[20:24]) != 0 {
		return nil, 0, fmt.Errorf("wire: reserved checkpoint header bytes are not zero")
	}
	total := ckpHeaderSize + int(payloadLen)
	if len(data) < total {
		return nil, 0, fmt.Errorf("wire: truncated checkpoint: frame declares %d payload bytes, %d available", payloadLen, len(data)-ckpHeaderSize)
	}
	payload := data[ckpHeaderSize:total]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[16:20]); got != want {
		return nil, 0, fmt.Errorf("wire: checkpoint checksum mismatch (stored %#x, computed %#x)", want, got)
	}

	r := ckpReader{buf: payload}
	gen, err := r.u64()
	if err != nil {
		return nil, 0, err
	}
	name, err := r.lenBytes("name")
	if err != nil {
		return nil, 0, err
	}
	if len(name) < 1 || len(name) > maxCheckpointName {
		return nil, 0, fmt.Errorf("wire: checkpoint name length %d outside 1…%d", len(name), maxCheckpointName)
	}
	config, err := r.lenBytes("config")
	if err != nil {
		return nil, 0, err
	}
	stateBytes, err := r.lenBytes("state")
	if err != nil {
		return nil, 0, err
	}
	st, err := Decode(stateBytes)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: checkpoint state: %w", err)
	}
	if st.Gen != gen {
		return nil, 0, fmt.Errorf("wire: checkpoint frame gen %d disagrees with its state's gen %d", gen, st.Gen)
	}
	count, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	// Each node record is ≥ 41 bytes; bound the count by the remaining
	// payload so a corrupt header cannot drive the allocation.
	if int(count) > r.remaining()/41+1 {
		return nil, 0, fmt.Errorf("wire: checkpoint declares %d node records in %d remaining bytes", count, r.remaining())
	}
	nodes := make([]stream.NodeRecord, count)
	prev := int64(math.MinInt64)
	for i := range nodes {
		nr := &nodes[i]
		if err := r.nodeRecord(nr); err != nil {
			return nil, 0, err
		}
		if int64(nr.Node) <= prev {
			return nil, 0, fmt.Errorf("wire: checkpoint node records out of order at node %d", nr.Node)
		}
		prev = int64(nr.Node)
	}
	if r.remaining() != 0 {
		return nil, 0, fmt.Errorf("wire: checkpoint frame has %d trailing payload bytes", r.remaining())
	}
	return &Checkpoint{
		Name:   string(name),
		Config: append([]byte(nil), config...),
		Gen:    gen,
		State:  &stream.FullState{State: st, Nodes: nodes},
	}, total, nil
}

// LastCheckpoint walks an appended frame sequence and returns the LAST frame
// that fully verifies (magic, checksum, content), plus the number of
// trailing bytes it ignored — a torn final frame from a crash mid-append,
// or garbage. It never fails: an empty or wholly unreadable file returns
// (nil, len(data)), which restores as a clean empty state.
func LastCheckpoint(data []byte) (*Checkpoint, int) {
	last, _, tail := ScanCheckpoints(data)
	return last, tail
}

// ScanCheckpoints is LastCheckpoint plus the frame count: the last fully
// verifying frame, how many intact frames precede and include it, and the
// trailing bytes ignored after it. The count is what compaction policies
// key on (a file holds frames-1 superseded frames).
func ScanCheckpoints(data []byte) (last *Checkpoint, frames, tail int) {
	off := 0
	for off < len(data) {
		cp, n, err := DecodeCheckpoint(data[off:])
		if err != nil {
			// Frames after a damaged one are unreachable (frame boundaries
			// are only known by walking), so everything from here is tail.
			break
		}
		last = cp
		frames++
		off += n
	}
	return last, frames, len(data) - off
}

// CompactCheckpoints rewrites the checkpoint file at path so it holds only
// its newest intact frame, dropping every superseded frame and any torn
// tail. The rewrite is atomic and durable: the surviving frame's exact
// bytes go to a temporary file in the same directory, which is fsynced,
// renamed over path, and followed by a directory fsync — a crash at any
// instant leaves either the old file or the compacted one, never a mix.
// Files that are already one intact frame with no tail, or that contain no
// intact frame at all (recovery's problem, not compaction's), are left
// untouched. It returns how many superseded frames were dropped.
//
// Callers holding an open O_APPEND handle on path MUST close it before
// compacting and reopen afterwards: the rename leaves such a handle
// pointing at the replaced inode, and frames appended through it would be
// silently lost.
func CompactCheckpoints(path string) (dropped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wire: compact checkpoints: %w", err)
	}
	start, off, frames := 0, 0, 0
	for off < len(data) {
		_, n, err := DecodeCheckpoint(data[off:])
		if err != nil {
			break
		}
		start = off
		frames++
		off += n
	}
	tail := len(data) - off
	if frames == 0 || (frames == 1 && tail == 0) {
		return 0, nil
	}

	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wire: compact checkpoints: %w", err)
	}
	if _, err := f.Write(data[start:off]); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("wire: compact checkpoints: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("wire: compact checkpoints: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wire: compact checkpoints: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wire: compact checkpoints: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return 0, fmt.Errorf("wire: compact checkpoints: %w", err)
	}
	return frames - 1, nil
}

// SyncDir fsyncs a directory, making previously created, renamed or removed
// directory entries durable — the second half of the AppendCheckpoint
// durability contract.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wire: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wire: sync dir %q: %w", dir, err)
	}
	return nil
}

func (w *writer) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[w.off:], v)
	w.off += 8
}

func (w *writer) byte(v byte) {
	w.buf[w.off] = v
	w.off++
}

func (w *writer) bytes(v []byte) {
	copy(w.buf[w.off:], v)
	w.off += len(v)
}

// ckpReader consumes the variable-length checkpoint payload with explicit
// bounds checks (unlike reader, whose buffer length is pre-validated).
type ckpReader struct {
	buf []byte
	off int
}

func (r *ckpReader) remaining() int { return len(r.buf) - r.off }

func (r *ckpReader) need(n int, what string) error {
	if r.remaining() < n {
		return fmt.Errorf("wire: truncated checkpoint payload reading %s (%d bytes left, need %d)", what, r.remaining(), n)
	}
	return nil
}

func (r *ckpReader) u32() (uint32, error) {
	if err := r.need(4, "u32"); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *ckpReader) u64() (uint64, error) {
	if err := r.need(8, "u64"); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *ckpReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *ckpReader) lenBytes(what string) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n), what); err != nil {
		return nil, err
	}
	v := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

func (r *ckpReader) nodeRecord(nr *stream.NodeRecord) error {
	node, err := r.u32()
	if err != nil {
		return err
	}
	cat, err := r.u32()
	if err != nil {
		return err
	}
	if nr.Mult, err = r.f64(); err != nil {
		return err
	}
	if nr.Weight, err = r.f64(); err != nil {
		return err
	}
	if err := r.need(1, "flags"); err != nil {
		return err
	}
	flags := r.buf[r.off]
	r.off++
	if flags&^byte(ckpFlagStarSeen) != 0 {
		return fmt.Errorf("wire: checkpoint node %d has unknown flag bits %#x", int32(node), flags)
	}
	if nr.Deg, err = r.f64(); err != nil {
		return err
	}
	nr.Node, nr.Cat = int32(node), int32(cat)
	nr.StarSeen = flags&ckpFlagStarSeen != 0
	nbrs, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(int(nbrs)*(4+8), "neighbor list"); err != nil {
		return err
	}
	if nbrs > 0 {
		nr.NbrCat = make([]int32, nbrs)
		nr.NbrCnt = make([]float64, nbrs)
		for j := range nr.NbrCat {
			c, _ := r.u32()
			nr.NbrCat[j] = int32(c)
			nr.NbrCnt[j], _ = r.f64()
		}
	}
	peers, err := r.u32()
	if err != nil {
		return err
	}
	if err := r.need(int(peers)*4, "peer list"); err != nil {
		return err
	}
	if peers > 0 {
		nr.Peers = make([]int32, peers)
		for j := range nr.Peers {
			p, _ := r.u32()
			nr.Peers[j] = int32(p)
		}
	}
	return nil
}
